package obs

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanRecorderNilSafe(t *testing.T) {
	var r *SpanRecorder
	if r.Sampled(1) {
		t.Error("nil recorder sampled")
	}
	if id := r.NewID(); id != 0 {
		t.Errorf("nil recorder id = %d", id)
	}
	r.Record(Span{Kind: SpanWrite}) // must not panic
	r.SlowOp(time.Millisecond, nil)
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil recorder snapshot = %v", got)
	}
	if r.Total() != 0 {
		t.Error("nil recorder total nonzero")
	}

	var o *Observer
	if o.SpanRec() != nil {
		t.Error("nil observer returned a recorder")
	}
}

func TestSpanRecorderWraparound(t *testing.T) {
	r := NewSpanRecorder(4, 1)
	base := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		r.Record(Span{ID: uint64(i + 1), Kind: SpanWrite, Start: base.Add(time.Duration(i) * time.Second)})
	}
	if r.Total() != 10 {
		t.Errorf("total = %d, want 10", r.Total())
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d, want 4 (ring size)", len(got))
	}
	// The ring must retain exactly the 4 newest, oldest first.
	for i, s := range got {
		if want := uint64(7 + i); s.ID != want {
			t.Errorf("snapshot[%d].ID = %d, want %d", i, s.ID, want)
		}
	}
}

func TestSpanSampling(t *testing.T) {
	r := NewSpanRecorder(16, 4)
	var kept int
	for trace := uint64(0); trace < 100; trace++ {
		if r.Sampled(trace) {
			kept++
		}
	}
	if kept != 25 {
		t.Errorf("sampled %d of 100 traces with sample=4, want 25", kept)
	}
	// Sampling is deterministic per trace, so every node keeps the same set.
	if !r.Sampled(8) || r.Sampled(9) {
		t.Error("sampling not keyed on trace % sample")
	}
	if !NewSpanRecorder(1, 1).Sampled(7) {
		t.Error("sample=1 must keep everything")
	}
}

func TestSpanIDsDistinct(t *testing.T) {
	r := NewSpanRecorder(1, 1)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := r.NewID()
		if id == 0 || seen[id] {
			t.Fatalf("id %d zero or repeated", id)
		}
		seen[id] = true
	}
}

// TestSpanRecorderConcurrent hammers one recorder from many goroutines —
// run under -race this is the lock-free ring's safety proof. Each writer
// samples its traces the way the instrumented write path does.
func TestSpanRecorderConcurrent(t *testing.T) {
	const writers, perWriter = 8, 500
	r := NewSpanRecorder(64, 2)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				trace := r.NewID()
				if !r.Sampled(trace) {
					continue
				}
				r.Record(Span{
					Trace: trace, ID: r.NewID(), Kind: SpanKind(1 + i%int(numSpanKinds-1)),
					Node: "srv", Start: start, Dur: time.Duration(i) * time.Microsecond,
				})
			}
		}(w)
	}
	// Concurrent readers must never observe a torn span.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, s := range r.Snapshot() {
				if s.ID == 0 {
					t.Error("snapshot returned a zero span")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := len(r.Snapshot()); got != 64 {
		t.Errorf("full ring snapshot len = %d, want 64", got)
	}
	if r.Total() == 0 || r.Total() > writers*perWriter {
		t.Errorf("total = %d out of range", r.Total())
	}
}

// TestSpanRecorderConcurrentWraparound forces the cursor around a tiny ring
// many times while snapshots run — under -race this pins the hardest
// interleaving: Snapshot reading slots that writers are actively reusing.
// Every observed span must be intact (non-zero ID) and each goroutine's own
// spans must never appear out of per-writer order within one snapshot.
func TestSpanRecorderConcurrentWraparound(t *testing.T) {
	const writers, perWriter, ring = 4, 2000, 8
	r := NewSpanRecorder(ring, 1)
	start := time.Unix(3000, 0)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Trace encodes the writer, ID the per-writer sequence.
				r.Record(Span{Trace: uint64(w + 1), ID: uint64(i + 1), Kind: SpanWrite, Node: "srv", Start: start})
			}
		}(w)
	}
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	for g := 0; g < 2; g++ {
		snaps.Add(1)
		go func() {
			defer snaps.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				last := make(map[uint64]uint64, writers)
				for _, s := range r.Snapshot() {
					if s.ID == 0 || s.Trace == 0 {
						t.Error("torn span in snapshot")
						return
					}
					if prev, ok := last[s.Trace]; ok && s.ID <= prev {
						t.Errorf("writer %d spans out of order: %d after %d", s.Trace, s.ID, prev)
						return
					}
					last[s.Trace] = s.ID
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	snaps.Wait()
	if got := r.Total(); got != writers*perWriter {
		t.Errorf("total = %d, want %d", got, writers*perWriter)
	}
	if got := len(r.Snapshot()); got != ring {
		t.Errorf("post-run snapshot len = %d, want %d", got, ring)
	}
}

func TestSpanSlowOpLog(t *testing.T) {
	sink := NewCountSink()
	r := NewSpanRecorder(8, 1)
	r.SlowOp(10*time.Millisecond, NewTracer(sink))
	r.Record(Span{ID: 1, Kind: SpanWrite, Dur: 5 * time.Millisecond})
	r.Record(Span{ID: 2, Kind: SpanWrite, Dur: 20 * time.Millisecond})
	// Non-root kinds never hit the slow log even when slow.
	r.Record(Span{ID: 3, Kind: SpanAckWait, Dur: time.Second})
	if got := sink.Count(EvSlowOp); got != 1 {
		t.Errorf("slow-op events = %d, want 1", got)
	}
}

// spansFromHandler queries a SpansHandler and decodes the JSON lines.
func spansFromHandler(t *testing.T, rec *SpanRecorder, query string) []jsonSpan {
	t.Helper()
	req := httptest.NewRequest("GET", "/debug/spans"+query, nil)
	w := httptest.NewRecorder()
	SpansHandler(rec)(w, req)
	if w.Code != 200 {
		t.Fatalf("GET /debug/spans%s = %d: %s", query, w.Code, w.Body.String())
	}
	var out []jsonSpan
	sc := bufio.NewScanner(strings.NewReader(w.Body.String()))
	for sc.Scan() {
		var js jsonSpan
		if err := json.Unmarshal(sc.Bytes(), &js); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		out = append(out, js)
	}
	return out
}

func TestSpansHandlerFilters(t *testing.T) {
	rec := NewSpanRecorder(16, 1)
	base := time.Unix(2000, 0)
	rec.Record(Span{Trace: 1, ID: 1, Kind: SpanWrite, Node: "srv", Object: "o1", Start: base, Dur: 40 * time.Millisecond})
	rec.Record(Span{Trace: 1, ID: 2, Parent: 1, Kind: SpanAckWait, Node: "srv", Start: base, Dur: 30 * time.Millisecond})
	rec.Record(Span{Trace: 2, ID: 3, Kind: SpanFanout, Node: "srv", Client: "c1", Start: base.Add(time.Second), Dur: time.Millisecond})

	if got := spansFromHandler(t, rec, ""); len(got) != 3 {
		t.Fatalf("unfiltered spans = %d, want 3", len(got))
	}
	got := spansFromHandler(t, rec, "?type=write")
	if len(got) != 1 || got[0].Kind != "write" || got[0].ID != 1 {
		t.Errorf("?type=write → %+v", got)
	}
	got = spansFromHandler(t, rec, "?type=write&type=fanout")
	if len(got) != 2 {
		t.Errorf("repeated type filter → %d spans, want 2", len(got))
	}
	got = spansFromHandler(t, rec, "?min_dur=25ms")
	if len(got) != 2 {
		t.Errorf("?min_dur=25ms → %d spans, want 2", len(got))
	}
	got = spansFromHandler(t, rec, "?trace=2")
	if len(got) != 1 || got[0].Trace != 2 {
		t.Errorf("?trace=2 → %+v", got)
	}
	// Bad parameters are 400s, not silent full dumps.
	req := httptest.NewRequest("GET", "/debug/spans?min_dur=fast", nil)
	w := httptest.NewRecorder()
	SpansHandler(rec)(w, req)
	if w.Code != 400 {
		t.Errorf("bad min_dur → %d, want 400", w.Code)
	}
	req = httptest.NewRequest("GET", "/debug/spans?trace=x", nil)
	w = httptest.NewRecorder()
	SpansHandler(rec)(w, req)
	if w.Code != 400 {
		t.Errorf("bad trace → %d, want 400", w.Code)
	}
}

// TestSpansHandlerConcurrent reads the endpoint while writers are active —
// under -race this pins the snapshot/record interleaving.
func TestSpansHandlerConcurrent(t *testing.T) {
	rec := NewSpanRecorder(32, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec.Record(Span{Trace: uint64(i + 1), ID: rec.NewID(), Kind: SpanWrite, Start: time.Now()})
			}
		}()
	}
	for i := 0; i < 20; i++ {
		spansFromHandler(t, rec, "")
		spansFromHandler(t, rec, "?type=write&min_dur=0s")
	}
	close(stop)
	wg.Wait()
}

func TestSpanKindString(t *testing.T) {
	if SpanWrite.String() != "write" || SpanAckWait.String() != "ack-wait" {
		t.Errorf("kind names wrong: %v %v", SpanWrite, SpanAckWait)
	}
	if got := SpanKind(99).String(); got != "span(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}
