package audit

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// BenchmarkAuditDisabled pins the cost every instrumented sim call site pays
// when no auditor is attached: one nil check through sim.Env.Emit, zero
// allocations — the same bar obs.BenchmarkEmitDisabled sets for the live
// stack.
func BenchmarkAuditDisabled(b *testing.B) {
	eng := sim.NewEngine(nil)
	env := eng.Env()
	at := time.Now()
	e := obs.Event{Type: obs.EvCacheRead, Client: "c1", Object: "s/o", Volume: "s", Version: 3, At: at}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.Emit(e)
	}
}

// BenchmarkAuditObserve measures the enabled path: one event through the
// full shadow-model dispatch (a cache read against installed leases).
func BenchmarkAuditObserve(b *testing.B) {
	a := New(Config{
		ObjectLease: 100 * time.Second, VolumeLease: 10 * time.Second,
		RequireObjectLease: true, RequireVolumeLease: true, CheckStaleness: true,
	})
	at := time.Now()
	a.Observe(obs.Event{Type: obs.EvVolLeaseGrant, Client: "c1", Volume: "v",
		Expire: at.Add(time.Hour), At: at})
	a.Observe(obs.Event{Type: obs.EvObjLeaseGrant, Client: "c1", Object: "o",
		Version: 1, Expire: at.Add(time.Hour), At: at})
	a.Observe(obs.Event{Type: obs.EvWriteApplied, Object: "o", Volume: "v", Version: 1, At: at})
	e := obs.Event{Type: obs.EvCacheRead, Client: "c1", Object: "o", Volume: "v", Version: 1, At: at}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Observe(e)
	}
}
