// Package audit implements an online consistency auditor for the volume
// lease protocol. It attaches to the observability event stream
// (internal/obs) as a sink and maintains a shadow model of lease state per
// (client, volume, object), checking the paper's safety invariants on every
// event:
//
//   - read-validity: a client serves a cached read only while it holds
//     valid leases on both the object and its volume (Section 3).
//   - write-safety: a write completes only when every reachable holder has
//     acknowledged the invalidation or let a required lease expire.
//   - epoch-monotonicity: volume epochs never move backwards, per granting
//     node and per client.
//   - delayed-ordering: an Inactive client's queued invalidations are
//     delivered and acknowledged before its volume lease is renewed
//     (Section 3.1.1).
//   - discard-window: a client moves from Inactive to Unreachable only
//     after the discard time d has elapsed since its volume lease expired.
//   - reconnect-skipped: an Unreachable client regains a volume lease only
//     through the reconnection protocol (MUST_RENEW_ALL).
//   - staleness-bound: the staleness observed on any stale read never
//     exceeds the analytic bound min(t, t_v) (Table 1).
//
// The same auditor audits the discrete-event simulator: algorithms emit
// the equivalent events through sim.Env.Emit and declare their invariant
// profile via AuditConfig.
//
// The model is deliberately time-based: lease validity is judged from the
// expiry times carried in grant events against event timestamps, so the
// auditor tolerates benign cross-goroutine delivery skew (a configurable
// Slack absorbs clock-edge races in the live stack).
//
// # Ordering contract
//
// The live server shards its consistency state per volume and emits each
// volume's protocol events under that shard's mutex, through synchronous
// sinks — so the auditor receives every volume's events in their true
// order, while streams from different volumes interleave arbitrarily.
// That is exactly what the model needs: every invariant is scoped to one
// (client, volume, object) lineage, never across volumes. Observe
// serializes concurrent callers internally, so per-shard goroutines may
// feed one Auditor directly.
package audit

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Invariant rule names, used in Violation.Rule and as metric labels.
const (
	RuleReadValidity      = "read-validity"
	RuleWriteSafety       = "write-safety"
	RuleEpochMonotonicity = "epoch-monotonicity"
	RuleDelayedOrdering   = "delayed-ordering"
	RuleDiscardWindow     = "discard-window"
	RuleReconnectSkipped  = "reconnect-skipped"
	RuleStalenessBound    = "staleness-bound"
)

// Rules lists every invariant the auditor checks.
var Rules = []string{
	RuleReadValidity, RuleWriteSafety, RuleEpochMonotonicity,
	RuleDelayedOrdering, RuleDiscardWindow, RuleReconnectSkipped,
	RuleStalenessBound,
}

// Config describes the protocol variant under audit: which leases a read
// requires, the lease terms (for the analytic staleness bound and the
// discard window), and tolerance for real-clock jitter.
type Config struct {
	// ObjectLease and VolumeLease are the configured terms t and t_v.
	// They back the analytic staleness bound and serve as fallback expiry
	// when a grant event carries none.
	ObjectLease time.Duration
	VolumeLease time.Duration
	// InactiveDiscard is the paper's d; 0 disables the discard-window check.
	InactiveDiscard time.Duration
	// RequireObjectLease / RequireVolumeLease select which leases the
	// read-validity and write-safety invariants demand. Volume leases
	// imply both; plain object leases only the former; Poll/Callback
	// neither.
	RequireObjectLease bool
	RequireVolumeLease bool
	// CheckStaleness enables the staleness-bound violation (staleness is
	// always *measured* when determinable; this only arms the check).
	CheckStaleness bool
	// StalenessBound overrides the analytic bound min(t, t_v); 0 derives
	// it from the lease terms.
	StalenessBound time.Duration
	// BestEffort disables the write-safety check: best-effort writes
	// deliberately complete while leases are outstanding, trading the
	// write-safety invariant for bounded staleness.
	BestEffort bool
	// Slack absorbs clock-edge races in the live stack: a lease is only
	// judged invalid (or a bound exceeded) by more than Slack.
	Slack time.Duration
	// MaxViolations caps the retained violation log (the total count keeps
	// growing). 0 means the default of 128.
	MaxViolations int
	// OnViolation, when set, is called synchronously for every violation.
	OnViolation func(Violation)
}

// Bound reports the effective staleness bound: StalenessBound when set,
// otherwise min(t, t_v) over the non-zero lease terms, 0 when unbounded.
func (c Config) Bound() time.Duration {
	if c.StalenessBound > 0 {
		return c.StalenessBound
	}
	var b time.Duration
	if c.ObjectLease > 0 {
		b = c.ObjectLease
	}
	if c.VolumeLease > 0 && (b == 0 || c.VolumeLease < b) {
		b = c.VolumeLease
	}
	return b
}

// LiveConfig derives the auditor configuration for a live server from its
// table configuration. bestEffort mirrors server.WriteBestEffort.
func LiveConfig(table core.Config, bestEffort bool) Config {
	return Config{
		ObjectLease:        table.ObjectLease,
		VolumeLease:        table.VolumeLease,
		InactiveDiscard:    table.InactiveDiscard,
		RequireObjectLease: true,
		RequireVolumeLease: true,
		CheckStaleness:     true,
		BestEffort:         bestEffort,
		Slack:              25 * time.Millisecond,
	}
}

// Profiled is implemented by simulator algorithms that declare how they
// should be audited. Algorithms without a profile are not audited.
type Profiled interface {
	AuditConfig() Config
}

// Violation is one detected invariant breach.
type Violation struct {
	Rule   string        `json:"rule"`
	At     time.Time     `json:"at"`
	Client core.ClientID `json:"client,omitempty"`
	Object core.ObjectID `json:"object,omitempty"`
	Volume core.VolumeID `json:"volume,omitempty"`
	Detail string        `json:"detail"`
}

func (v Violation) String() string {
	s := fmt.Sprintf("%s at %s", v.Rule, v.At.Format(time.RFC3339Nano))
	if v.Client != "" {
		s += " client=" + string(v.Client)
	}
	if v.Object != "" {
		s += " obj=" + string(v.Object)
	}
	if v.Volume != "" {
		s += " vol=" + string(v.Volume)
	}
	return s + ": " + v.Detail
}

// coState is the model's view of one (client, object) pair: the lease the
// client holds and the version it caches.
type coState struct {
	expire  time.Time
	version core.Version
	hasCopy bool
}

// cvKey indexes per-(client, volume) state.
type cvKey struct {
	client core.ClientID
	volume core.VolumeID
}

// cvState is the model's view of one (client, volume) pair.
type cvState struct {
	expire time.Time
	epoch  core.Epoch
	// pending holds queued delayed invalidations (the Inactive set);
	// pendingSince is when the client's volume lease expired.
	pending      map[core.ObjectID]struct{}
	pendingSince time.Time
	unreachable  bool
	reconnecting bool
}

// commit records one applied write for staleness measurement.
type commit struct {
	version core.Version
	at      time.Time
}

// objState is the model's view of one object at its server.
type objState struct {
	version core.Version
	// history retains recent commits (version ascending) so a stale read
	// of version v can be dated against the first commit that superseded
	// v. Capped; reads staler than the retained window are not measured.
	history []commit
}

const historyCap = 64

// epochKey scopes epoch monotonicity per granting node: a caching proxy
// runs its own lease table over the same volume id as its origin.
type epochKey struct {
	node   string
	volume core.VolumeID
}

// Auditor is an obs.Sink that checks protocol invariants online. All
// methods are safe for concurrent use.
type Auditor struct {
	cfg Config

	mu      sync.Mutex
	holders map[core.ObjectID]map[core.ClientID]*coState
	vols    map[cvKey]*cvState
	objects map[core.ObjectID]*objState
	epochs  map[epochKey]core.Epoch

	violations []Violation
	byRule     map[string]int64

	events     atomic.Int64
	totalViol  atomic.Int64
	staleReads atomic.Int64
	stale      *metrics.LatencyHistogram
}

// New builds an auditor for the given protocol profile.
func New(cfg Config) *Auditor {
	if cfg.MaxViolations == 0 {
		cfg.MaxViolations = 128
	}
	return &Auditor{
		cfg:     cfg,
		holders: make(map[core.ObjectID]map[core.ClientID]*coState),
		vols:    make(map[cvKey]*cvState),
		objects: make(map[core.ObjectID]*objState),
		epochs:  make(map[epochKey]core.Epoch),
		byRule:  make(map[string]int64),
		stale:   metrics.NewLatencyHistogram(),
	}
}

// Config reports the profile the auditor was built with.
func (a *Auditor) Config() Config { return a.cfg }

// Observe feeds one protocol event into the model. Implements obs.Sink.
func (a *Auditor) Observe(e obs.Event) {
	a.events.Add(1)
	a.mu.Lock()
	defer a.mu.Unlock()
	switch e.Type {
	case obs.EvObjLeaseGrant:
		a.objLeaseGrant(e)
	case obs.EvVolLeaseGrant:
		a.volLeaseGrant(e)
	case obs.EvInvalRecv, obs.EvInvalAcked:
		a.dropCopy(e.Client, e.Object)
	case obs.EvEpochBump:
		a.epochBump(e)
	case obs.EvReconnect:
		a.reconnect(e)
	case obs.EvUnreachable:
		a.unreachable(e)
	case obs.EvInvalQueued:
		a.invalQueued(e)
	case obs.EvPendingDelivered:
		a.pendingDelivered(e)
	case obs.EvCacheRead:
		a.cacheRead(e)
	case obs.EvWriteApplied:
		a.writeApplied(e)
	}
}

// violate records one breach (under a.mu).
func (a *Auditor) violate(v Violation) {
	a.totalViol.Add(1)
	a.byRule[v.Rule]++
	if len(a.violations) < a.cfg.MaxViolations {
		a.violations = append(a.violations, v)
	}
	if a.cfg.OnViolation != nil {
		a.cfg.OnViolation(v)
	}
}

// holder returns (creating) the (client, object) state.
func (a *Auditor) holder(oid core.ObjectID, c core.ClientID) *coState {
	m := a.holders[oid]
	if m == nil {
		m = make(map[core.ClientID]*coState)
		a.holders[oid] = m
	}
	co := m[c]
	if co == nil {
		co = &coState{}
		m[c] = co
	}
	return co
}

// clientVol returns (creating) the (client, volume) state.
func (a *Auditor) clientVol(c core.ClientID, v core.VolumeID) *cvState {
	k := cvKey{client: c, volume: v}
	cv := a.vols[k]
	if cv == nil {
		cv = &cvState{}
		a.vols[k] = cv
	}
	return cv
}

func (a *Auditor) objLeaseGrant(e obs.Event) {
	co := a.holder(e.Object, e.Client)
	co.expire = e.Expire
	if co.expire.IsZero() && a.cfg.ObjectLease > 0 {
		co.expire = e.At.Add(a.cfg.ObjectLease)
	}
	co.version = e.Version
	co.hasCopy = true
	// The grant proves the server's version is at least e.Version; commit
	// times still come only from EvWriteApplied.
	obj := a.object(e.Object)
	if e.Version > obj.version {
		obj.version = e.Version
	}
}

func (a *Auditor) object(oid core.ObjectID) *objState {
	obj := a.objects[oid]
	if obj == nil {
		obj = &objState{}
		a.objects[oid] = obj
	}
	return obj
}

func (a *Auditor) volLeaseGrant(e obs.Event) {
	cv := a.clientVol(e.Client, e.Volume)
	if len(cv.pending) > 0 {
		a.violate(Violation{
			Rule: RuleDelayedOrdering, At: e.At, Client: e.Client, Volume: e.Volume,
			Detail: fmt.Sprintf("volume lease granted with %d queued invalidations undelivered", len(cv.pending)),
		})
	}
	if cv.unreachable && !cv.reconnecting {
		a.violate(Violation{
			Rule: RuleReconnectSkipped, At: e.At, Client: e.Client, Volume: e.Volume,
			Detail: "volume lease granted to an Unreachable client without the reconnection protocol",
		})
	}
	if e.Epoch != 0 {
		ek := epochKey{node: e.Node, volume: e.Volume}
		if prev := a.epochs[ek]; e.Epoch < prev {
			a.violate(Violation{
				Rule: RuleEpochMonotonicity, At: e.At, Client: e.Client, Volume: e.Volume,
				Detail: fmt.Sprintf("epoch moved backwards on %s: %d -> %d", e.Node, prev, e.Epoch),
			})
		} else {
			a.epochs[ek] = e.Epoch
		}
		if e.Epoch < cv.epoch {
			a.violate(Violation{
				Rule: RuleEpochMonotonicity, At: e.At, Client: e.Client, Volume: e.Volume,
				Detail: fmt.Sprintf("client saw epoch move backwards: %d -> %d", cv.epoch, e.Epoch),
			})
		}
		cv.epoch = e.Epoch
	}
	cv.expire = e.Expire
	if cv.expire.IsZero() && a.cfg.VolumeLease > 0 {
		cv.expire = e.At.Add(a.cfg.VolumeLease)
	}
	cv.pending = nil
	cv.pendingSince = time.Time{}
	cv.unreachable = false
	cv.reconnecting = false
}

func (a *Auditor) dropCopy(c core.ClientID, oid core.ObjectID) {
	if co := a.holders[oid][c]; co != nil {
		co.hasCopy = false
	}
}

func (a *Auditor) epochBump(e obs.Event) {
	ek := epochKey{node: e.Node, volume: e.Volume}
	if e.Epoch > a.epochs[ek] {
		a.epochs[ek] = e.Epoch
	}
	// Recovery wipes the server's Inactive/Unreachable bookkeeping; clear
	// the model's mirror so post-recovery grants are not misjudged. Client
	// lease state stays: outstanding leases remain valid until expiry (the
	// write fence covers them).
	for k, cv := range a.vols {
		if k.volume != e.Volume {
			continue
		}
		cv.pending = nil
		cv.pendingSince = time.Time{}
		cv.unreachable = false
		cv.reconnecting = false
	}
}

func (a *Auditor) reconnect(e obs.Event) {
	cv := a.clientVol(e.Client, e.Volume)
	cv.reconnecting = true
	// Queued invalidations are superseded by the renew-all vector.
	cv.pending = nil
	cv.pendingSince = time.Time{}
	// So is copy state: MUST_RENEW_ALL makes the client re-enumerate every
	// cached object, and the renewal's grant/invalidate vector rebuilds the
	// model. A copy the client no longer reports — say, an invalidation it
	// applied whose ack was lost to the partition — must not linger and be
	// judged against later writes.
	for _, holders := range a.holders {
		if co := holders[e.Client]; co != nil {
			co.hasCopy = false
		}
	}
}

func (a *Auditor) unreachable(e obs.Event) {
	mark := func(cv *cvState, vol core.VolumeID) {
		if a.cfg.InactiveDiscard > 0 && len(cv.pending) > 0 && !cv.pendingSince.IsZero() {
			deadline := cv.pendingSince.Add(a.cfg.InactiveDiscard)
			if e.At.Add(a.cfg.Slack).Before(deadline) {
				a.violate(Violation{
					Rule: RuleDiscardWindow, At: e.At, Client: e.Client, Volume: vol,
					Detail: fmt.Sprintf("Inactive client discarded %v before the window d=%v elapsed",
						deadline.Sub(e.At), a.cfg.InactiveDiscard),
				})
			}
		}
		cv.unreachable = true
		cv.pending = nil
		cv.pendingSince = time.Time{}
	}
	if e.Volume != "" {
		mark(a.clientVol(e.Client, e.Volume), e.Volume)
		return
	}
	for k, cv := range a.vols {
		if k.client == e.Client {
			mark(cv, k.volume)
		}
	}
}

func (a *Auditor) invalQueued(e obs.Event) {
	cv := a.clientVol(e.Client, e.Volume)
	if cv.pending == nil {
		cv.pending = make(map[core.ObjectID]struct{})
	}
	if len(cv.pending) == 0 {
		// The discard window runs from when the volume lease expired; the
		// event may carry that bound explicitly, otherwise the model's
		// last granted expiry is exactly the server's bound.
		switch {
		case !e.Expire.IsZero():
			cv.pendingSince = e.Expire
		case !cv.expire.IsZero():
			cv.pendingSince = cv.expire
		default:
			cv.pendingSince = e.At
		}
	}
	cv.pending[e.Object] = struct{}{}
}

func (a *Auditor) pendingDelivered(e obs.Event) {
	cv := a.clientVol(e.Client, e.Volume)
	cv.pending = nil
	cv.pendingSince = time.Time{}
}

// leaseValid reports whether a lease expiring at expire is still valid at
// the event time, giving the lease the benefit of Slack.
func (a *Auditor) leaseValid(expire, at time.Time) bool {
	if expire.IsZero() {
		return false
	}
	return expire.Add(a.cfg.Slack).After(at)
}

func (a *Auditor) cacheRead(e obs.Event) {
	if a.cfg.RequireObjectLease {
		co := a.holders[e.Object][e.Client]
		if co == nil || !a.leaseValid(co.expire, e.At) {
			detail := "cached read without an object lease"
			if co != nil {
				detail = fmt.Sprintf("cached read %v after the object lease expired", e.At.Sub(co.expire))
			}
			a.violate(Violation{
				Rule: RuleReadValidity, At: e.At, Client: e.Client,
				Object: e.Object, Volume: e.Volume, Detail: detail,
			})
		}
	}
	if a.cfg.RequireVolumeLease {
		cv := a.vols[cvKey{client: e.Client, volume: e.Volume}]
		if cv == nil || !a.leaseValid(cv.expire, e.At) {
			detail := "cached read without a volume lease"
			if cv != nil {
				detail = fmt.Sprintf("cached read %v after the volume lease expired", e.At.Sub(cv.expire))
			}
			a.violate(Violation{
				Rule: RuleReadValidity, At: e.At, Client: e.Client,
				Object: e.Object, Volume: e.Volume, Detail: detail,
			})
		}
	}
	a.measureStaleness(e)
}

// measureStaleness dates a stale read against the first commit that
// superseded the version read.
func (a *Auditor) measureStaleness(e obs.Event) {
	obj := a.objects[e.Object]
	if obj == nil || e.Version >= obj.version {
		return
	}
	a.staleReads.Add(1)
	var since time.Time
	for _, c := range obj.history {
		if c.version > e.Version {
			since = c.at
			break
		}
	}
	if since.IsZero() {
		return // commit predates the retained history; not measurable
	}
	staleness := e.At.Sub(since)
	if staleness < 0 {
		staleness = 0
	}
	a.stale.Observe(staleness)
	if bound := a.cfg.Bound(); a.cfg.CheckStaleness && bound > 0 && staleness > bound+a.cfg.Slack {
		a.violate(Violation{
			Rule: RuleStalenessBound, At: e.At, Client: e.Client,
			Object: e.Object, Volume: e.Volume,
			Detail: fmt.Sprintf("read version %d was %v stale, exceeding the bound min(t,t_v)=%v",
				e.Version, staleness, bound),
		})
	}
}

func (a *Auditor) writeApplied(e obs.Event) {
	obj := a.object(e.Object)
	if e.Version > obj.version {
		obj.version = e.Version
	}
	obj.history = append(obj.history, commit{version: e.Version, at: e.At})
	if len(obj.history) > historyCap {
		obj.history = obj.history[len(obj.history)-historyCap:]
	}
	if a.cfg.BestEffort || (!a.cfg.RequireObjectLease && !a.cfg.RequireVolumeLease) {
		return
	}
	for c, co := range a.holders[e.Object] {
		if !co.hasCopy || co.version >= e.Version {
			continue
		}
		// A holder endangers the write only if every lease a read requires
		// is still valid *beyond* the slack at commit time.
		if a.cfg.RequireObjectLease && !co.expire.After(e.At.Add(a.cfg.Slack)) {
			continue
		}
		if a.cfg.RequireVolumeLease {
			cv := a.vols[cvKey{client: c, volume: e.Volume}]
			if cv == nil || !cv.expire.After(e.At.Add(a.cfg.Slack)) {
				continue
			}
			if cv.unreachable || cv.reconnecting || len(cv.pending) > 0 {
				continue
			}
		}
		a.violate(Violation{
			Rule: RuleWriteSafety, At: e.At, Client: c,
			Object: e.Object, Volume: e.Volume,
			Detail: fmt.Sprintf("write to version %d completed while the client still held version %d under valid leases",
				e.Version, co.version),
		})
	}
}
