package audit

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestConcurrentPerVolumeStreams models the sharded server's emission
// pattern: each volume's events arrive in per-volume order (emitted under
// that shard's mutex), but streams from different volumes interleave
// arbitrarily across goroutines. The auditor must serialize them internally
// and report a clean run — per-volume order is the only ordering contract
// the live stack provides. Run under -race this also proves Observe is safe
// for concurrent sinks.
func TestConcurrentPerVolumeStreams(t *testing.T) {
	a := New(volumeCfg())
	const shards, rounds = 8, 50
	var wg sync.WaitGroup
	for k := 0; k < shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := core.ClientID(fmt.Sprintf("c-%d", k))
			o := core.ObjectID(fmt.Sprintf("o-%d", k))
			v := core.VolumeID(fmt.Sprintf("v-%d", k))
			now := t0
			a.Observe(obs.Event{Type: obs.EvVolLeaseGrant, Client: c, Volume: v,
				Expire: now.Add(10 * time.Second), At: now})
			a.Observe(obs.Event{Type: obs.EvObjLeaseGrant, Client: c, Object: o,
				Version: 1, Expire: now.Add(100 * time.Second), At: now})
			for i := 1; i <= rounds; i++ {
				now = now.Add(100 * time.Millisecond)
				a.Observe(obs.Event{Type: obs.EvCacheRead, Client: c, Object: o, Volume: v,
					Version: core.Version(i), At: now})
				a.Observe(obs.Event{Type: obs.EvInvalAcked, Client: c, Object: o, At: now})
				a.Observe(obs.Event{Type: obs.EvWriteApplied, Object: o, Volume: v,
					Version: core.Version(i + 1), At: now})
				// Re-arm both leases at the new version for the next round.
				a.Observe(obs.Event{Type: obs.EvVolLeaseGrant, Client: c, Volume: v,
					Expire: now.Add(10 * time.Second), At: now})
				a.Observe(obs.Event{Type: obs.EvObjLeaseGrant, Client: c, Object: o,
					Version: core.Version(i + 1), Expire: now.Add(100 * time.Second), At: now})
			}
		}(k)
	}
	wg.Wait()
	if err := a.Err(); err != nil {
		t.Fatalf("interleaved per-volume streams flagged: %v", err)
	}
	want := int64(shards * (2 + rounds*5))
	if got := a.Snapshot().Events; got != want {
		t.Errorf("events = %d, want %d", got, want)
	}
}
