package audit

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Register exports the auditor through a metrics registry:
//
//	lease_audit_events_total                      — events fed to the model
//	lease_audit_violations_total                  — invariant breaches
//	lease_audit_violations_total{rule="..."}      — per-invariant breakdown
//	lease_audit_stale_reads_total                 — reads of a superseded version
//	lease_audit_staleness_seconds                 — observed staleness summary
//	lease_audit_max_observed_staleness_seconds    — worst staleness seen
//
// The staleness series are what the paper's Table 1 bounds: the max gauge
// must stay below min(t, t_v).
func (a *Auditor) Register(reg *obs.Registry) {
	reg.RegisterHistogram("lease_audit_staleness_seconds", a.stale)
	reg.GaugeFunc("lease_audit_max_observed_staleness_seconds", func() float64 {
		return a.stale.Max().Seconds()
	})
	reg.GaugeFunc("lease_audit_events_total", func() float64 {
		return float64(a.events.Load())
	})
	reg.GaugeFunc("lease_audit_stale_reads_total", func() float64 {
		return float64(a.staleReads.Load())
	})
	reg.GaugeFunc("lease_audit_violations_total", func() float64 {
		return float64(a.totalViol.Load())
	})
	for _, rule := range Rules {
		rule := rule
		name := fmt.Sprintf("lease_audit_rule_violations_total{rule=%q}", rule)
		reg.GaugeFunc(name, func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return float64(a.byRule[rule])
		})
	}
}

// Snapshot is a point-in-time audit report.
type Snapshot struct {
	Events         int64            `json:"events"`
	ViolationCount int64            `json:"violation_count"`
	ByRule         map[string]int64 `json:"by_rule,omitempty"`
	Violations     []Violation      `json:"violations,omitempty"`
	StaleReads     int64            `json:"stale_reads"`
	MaxStaleness   time.Duration    `json:"max_staleness_ns"`
	StalenessBound time.Duration    `json:"staleness_bound_ns"`
	TrackedObjects int              `json:"tracked_objects"`
	TrackedClients int              `json:"tracked_client_volumes"`
}

// Snapshot captures the current model and violation log.
func (a *Auditor) Snapshot() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := Snapshot{
		Events:         a.events.Load(),
		ViolationCount: a.totalViol.Load(),
		StaleReads:     a.staleReads.Load(),
		MaxStaleness:   a.stale.Max(),
		StalenessBound: a.cfg.Bound(),
		TrackedObjects: len(a.objects),
		TrackedClients: len(a.vols),
	}
	if len(a.byRule) > 0 {
		s.ByRule = make(map[string]int64, len(a.byRule))
		for k, v := range a.byRule {
			s.ByRule[k] = v
		}
	}
	s.Violations = append(s.Violations, a.violations...)
	return s
}

// Violations returns the retained violation log.
func (a *Auditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.violations...)
}

// MaxStaleness reports the worst observed staleness.
func (a *Auditor) MaxStaleness() time.Duration { return a.stale.Max() }

// StaleReads reports how many reads returned a superseded version.
func (a *Auditor) StaleReads() int64 { return a.staleReads.Load() }

// Err summarizes the audit: nil when every invariant held, otherwise an
// error quoting the first violations. Intended as the single check at the
// end of a test or simulation run.
func (a *Auditor) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := a.totalViol.Load()
	if total == 0 {
		return nil
	}
	msg := fmt.Sprintf("audit: %d invariant violation(s)", total)
	quoted := len(a.violations)
	if quoted > 3 {
		quoted = 3
	}
	for _, v := range a.violations[:quoted] {
		msg += "; " + v.String()
	}
	if rest := total - int64(quoted); rest > 0 {
		msg += fmt.Sprintf("; and %d more", rest)
	}
	return fmt.Errorf("%s", msg)
}

// ServeHTTP reports the audit snapshot as JSON (the /debug/audit endpoint).
func (a *Auditor) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(a.Snapshot())
}
