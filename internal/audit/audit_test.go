package audit

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

var t0 = time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)

func at(s float64) time.Time { return t0.Add(time.Duration(s * float64(time.Second))) }

func volumeCfg() Config {
	return Config{
		ObjectLease: 100 * time.Second, VolumeLease: 10 * time.Second,
		InactiveDiscard:    30 * time.Second,
		RequireObjectLease: true, RequireVolumeLease: true,
		CheckStaleness: true,
	}
}

func grantBoth(a *Auditor, c, o, v string, now time.Time) {
	a.Observe(obs.Event{Type: obs.EvVolLeaseGrant, Client: core.ClientID(c), Volume: core.VolumeID(v),
		Expire: now.Add(10 * time.Second), At: now})
	a.Observe(obs.Event{Type: obs.EvObjLeaseGrant, Client: core.ClientID(c), Object: core.ObjectID(o),
		Version: 1, Expire: now.Add(100 * time.Second), At: now})
}

func TestCleanSequenceNoViolations(t *testing.T) {
	a := New(volumeCfg())
	grantBoth(a, "c1", "o", "v", at(0))
	a.Observe(obs.Event{Type: obs.EvCacheRead, Client: "c1", Object: "o", Volume: "v", Version: 1, At: at(1)})
	a.Observe(obs.Event{Type: obs.EvInvalAcked, Client: "c1", Object: "o", At: at(2)})
	a.Observe(obs.Event{Type: obs.EvWriteApplied, Object: "o", Volume: "v", Version: 2, At: at(2)})
	if err := a.Err(); err != nil {
		t.Fatalf("clean sequence flagged: %v", err)
	}
	if got := a.Snapshot().Events; got != 5 {
		t.Errorf("events = %d, want 5", got)
	}
}

func TestReadValidityViolations(t *testing.T) {
	a := New(volumeCfg())
	// No leases at all: both rules fire.
	a.Observe(obs.Event{Type: obs.EvCacheRead, Client: "c1", Object: "o", Volume: "v", At: at(0)})
	if n := a.Snapshot().ByRule[RuleReadValidity]; n != 2 {
		t.Fatalf("leaseless read: %d read-validity violations, want 2", n)
	}
	// Valid leases: clean.
	grantBoth(a, "c1", "o", "v", at(1))
	a.Observe(obs.Event{Type: obs.EvCacheRead, Client: "c1", Object: "o", Volume: "v", Version: 1, At: at(2)})
	if n := a.Snapshot().ByRule[RuleReadValidity]; n != 2 {
		t.Fatalf("valid read flagged: %d violations", n)
	}
	// Volume lease expired (10s term): one more violation.
	a.Observe(obs.Event{Type: obs.EvCacheRead, Client: "c1", Object: "o", Volume: "v", Version: 1, At: at(12)})
	if n := a.Snapshot().ByRule[RuleReadValidity]; n != 3 {
		t.Fatalf("read after volume expiry: %d violations, want 3", n)
	}
}

func TestWriteSafetyViolation(t *testing.T) {
	a := New(volumeCfg())
	grantBoth(a, "c1", "o", "v", at(0))
	// Commit without invalidating c1 while both its leases are valid.
	a.Observe(obs.Event{Type: obs.EvWriteApplied, Object: "o", Volume: "v", Version: 2, At: at(1)})
	if n := a.Snapshot().ByRule[RuleWriteSafety]; n != 1 {
		t.Fatalf("write-safety violations = %d, want 1", n)
	}
	// After the volume lease expires the same commit pattern is legal.
	a.Observe(obs.Event{Type: obs.EvWriteApplied, Object: "o", Volume: "v", Version: 3, At: at(11)})
	if n := a.Snapshot().ByRule[RuleWriteSafety]; n != 1 {
		t.Fatalf("post-expiry write flagged: %d violations", n)
	}
}

func TestWriteSafetyBestEffortDisabled(t *testing.T) {
	cfg := volumeCfg()
	cfg.BestEffort = true
	a := New(cfg)
	grantBoth(a, "c1", "o", "v", at(0))
	a.Observe(obs.Event{Type: obs.EvWriteApplied, Object: "o", Volume: "v", Version: 2, At: at(1)})
	if err := a.Err(); err != nil {
		t.Fatalf("best-effort write flagged: %v", err)
	}
}

func TestEpochMonotonicity(t *testing.T) {
	a := New(volumeCfg())
	ev := func(epoch int64, s float64) obs.Event {
		return obs.Event{Type: obs.EvVolLeaseGrant, Client: "c1", Volume: "v", Node: "srv",
			Epoch: core.Epoch(epoch), Expire: at(s).Add(10 * time.Second), At: at(s)}
	}
	a.Observe(ev(5, 0))
	a.Observe(ev(6, 1))
	if n := a.Snapshot().ByRule[RuleEpochMonotonicity]; n != 0 {
		t.Fatalf("monotonic epochs flagged: %d", n)
	}
	a.Observe(ev(4, 2))
	// Both the per-node and the per-client check fire.
	if n := a.Snapshot().ByRule[RuleEpochMonotonicity]; n != 2 {
		t.Fatalf("epoch regression: %d violations, want 2", n)
	}
}

func TestDelayedOrderingAndDiscardWindow(t *testing.T) {
	a := New(volumeCfg())
	grantBoth(a, "c1", "o", "v", at(0))
	// Volume lease expires at 10s; a delayed write queues an invalidation.
	a.Observe(obs.Event{Type: obs.EvInvalQueued, Client: "c1", Object: "o", Volume: "v",
		Expire: at(10), At: at(15)})
	a.Observe(obs.Event{Type: obs.EvWriteApplied, Object: "o", Volume: "v", Version: 2, At: at(15)})
	if err := a.Err(); err != nil {
		t.Fatalf("delayed write flagged: %v", err)
	}
	// Renewing without delivering the queued invalidation violates ordering.
	a.Observe(obs.Event{Type: obs.EvVolLeaseGrant, Client: "c1", Volume: "v",
		Expire: at(26), At: at(16)})
	if n := a.Snapshot().ByRule[RuleDelayedOrdering]; n != 1 {
		t.Fatalf("delayed-ordering violations = %d, want 1", n)
	}

	// Fresh run: queue again, then discard BEFORE d=30s has elapsed.
	b := New(volumeCfg())
	grantBoth(b, "c1", "o", "v", at(0))
	b.Observe(obs.Event{Type: obs.EvInvalQueued, Client: "c1", Object: "o", Volume: "v",
		Expire: at(10), At: at(15)})
	b.Observe(obs.Event{Type: obs.EvUnreachable, Client: "c1", Volume: "v", At: at(20)})
	if n := b.Snapshot().ByRule[RuleDiscardWindow]; n != 1 {
		t.Fatalf("early discard: %d violations, want 1", n)
	}
	// And the correct sequence: discard at/after expiry+d is clean, but the
	// client must then reconnect before its next lease.
	c := New(volumeCfg())
	grantBoth(c, "c1", "o", "v", at(0))
	c.Observe(obs.Event{Type: obs.EvInvalQueued, Client: "c1", Object: "o", Volume: "v",
		Expire: at(10), At: at(15)})
	c.Observe(obs.Event{Type: obs.EvUnreachable, Client: "c1", Volume: "v", At: at(40)})
	c.Observe(obs.Event{Type: obs.EvVolLeaseGrant, Client: "c1", Volume: "v",
		Expire: at(60), At: at(50)})
	if n := c.Snapshot().ByRule[RuleReconnectSkipped]; n != 1 {
		t.Fatalf("skipped reconnect: %d violations, want 1", n)
	}
	if n := c.Snapshot().ByRule[RuleDiscardWindow]; n != 0 {
		t.Fatalf("on-time discard flagged: %d", n)
	}
	// With the reconnection protocol the grant is clean.
	d := New(volumeCfg())
	grantBoth(d, "c1", "o", "v", at(0))
	d.Observe(obs.Event{Type: obs.EvUnreachable, Client: "c1", Volume: "v", At: at(40)})
	d.Observe(obs.Event{Type: obs.EvReconnect, Client: "c1", Volume: "v", At: at(50)})
	d.Observe(obs.Event{Type: obs.EvVolLeaseGrant, Client: "c1", Volume: "v",
		Expire: at(60), At: at(50)})
	if err := d.Err(); err != nil {
		t.Fatalf("reconnection flagged: %v", err)
	}
}

func TestStalenessMeasurementAndBound(t *testing.T) {
	a := New(volumeCfg()) // bound = min(100s, 10s) = 10s
	grantBoth(a, "c1", "o", "v", at(0))
	a.Observe(obs.Event{Type: obs.EvWriteApplied, Object: "o", Volume: "v", Version: 2, At: at(11)})
	// Read version 1 at 15s: 4s stale, within the bound.
	a.Observe(obs.Event{Type: obs.EvVolLeaseGrant, Client: "c1", Volume: "v", Expire: at(25), At: at(15)})
	a.Observe(obs.Event{Type: obs.EvCacheRead, Client: "c1", Object: "o", Volume: "v", Version: 1, At: at(15)})
	if n := a.StaleReads(); n != 1 {
		t.Fatalf("stale reads = %d, want 1", n)
	}
	if got, want := a.MaxStaleness(), 4*time.Second; got != want {
		t.Fatalf("max staleness = %v, want %v", got, want)
	}
	if n := a.Snapshot().ByRule[RuleStalenessBound]; n != 0 {
		t.Fatalf("in-bound staleness flagged: %d", n)
	}
	// Read version 1 at 22s: 11s stale, over the 10s bound.
	a.Observe(obs.Event{Type: obs.EvVolLeaseGrant, Client: "c1", Volume: "v", Expire: at(32), At: at(22)})
	a.Observe(obs.Event{Type: obs.EvCacheRead, Client: "c1", Object: "o", Volume: "v", Version: 1, At: at(22)})
	if n := a.Snapshot().ByRule[RuleStalenessBound]; n != 1 {
		t.Fatalf("staleness-bound violations = %d, want 1", n)
	}
	if got := a.Snapshot().StalenessBound; got != 10*time.Second {
		t.Fatalf("snapshot bound = %v, want 10s", got)
	}
}

func TestSlackAbsorbsEdgeRaces(t *testing.T) {
	cfg := volumeCfg()
	cfg.Slack = 50 * time.Millisecond
	a := New(cfg)
	grantBoth(a, "c1", "o", "v", at(0))
	// Read 20ms after the volume lease expired: inside the slack, clean.
	a.Observe(obs.Event{Type: obs.EvCacheRead, Client: "c1", Object: "o", Volume: "v",
		Version: 1, At: at(10.020)})
	if err := a.Err(); err != nil {
		t.Fatalf("in-slack read flagged: %v", err)
	}
	// 80ms after: beyond the slack, flagged.
	a.Observe(obs.Event{Type: obs.EvCacheRead, Client: "c1", Object: "o", Volume: "v",
		Version: 1, At: at(10.080)})
	if n := a.Snapshot().ByRule[RuleReadValidity]; n != 1 {
		t.Fatalf("out-of-slack read: %d violations, want 1", n)
	}
}

func TestEpochBumpClearsRecoveryState(t *testing.T) {
	a := New(volumeCfg())
	grantBoth(a, "c1", "o", "v", at(0))
	a.Observe(obs.Event{Type: obs.EvUnreachable, Client: "c1", Volume: "v", At: at(40)})
	// Server recovery wipes Inactive/Unreachable bookkeeping; a plain grant
	// after the bump is legal without the reconnection protocol (the epoch
	// mismatch itself forces clients through MUST_RENEW_ALL on the wire).
	a.Observe(obs.Event{Type: obs.EvEpochBump, Node: "srv", Volume: "v", Epoch: 9, At: at(45)})
	a.Observe(obs.Event{Type: obs.EvVolLeaseGrant, Client: "c1", Volume: "v", Node: "srv",
		Epoch: 9, Expire: at(60), At: at(50)})
	if err := a.Err(); err != nil {
		t.Fatalf("post-recovery grant flagged: %v", err)
	}
}

func TestViolationLogCapAndCallback(t *testing.T) {
	var seen int
	cfg := volumeCfg()
	cfg.MaxViolations = 2
	cfg.OnViolation = func(Violation) { seen++ }
	a := New(cfg)
	for i := 0; i < 5; i++ {
		a.Observe(obs.Event{Type: obs.EvCacheRead, Client: "c1", Object: "o", Volume: "v", At: at(float64(i))})
	}
	if got := len(a.Violations()); got != 2 {
		t.Errorf("retained %d violations, want cap 2", got)
	}
	if a.Snapshot().ViolationCount != 10 {
		t.Errorf("total = %d, want 10", a.Snapshot().ViolationCount)
	}
	if seen != 10 {
		t.Errorf("callback saw %d, want 10", seen)
	}
	if err := a.Err(); err == nil || !strings.Contains(err.Error(), "and 8 more") {
		t.Errorf("Err() = %v, want summary quoting first violations and the remainder", err)
	}
}

func TestBoundDerivation(t *testing.T) {
	cases := []struct {
		cfg  Config
		want time.Duration
	}{
		{Config{ObjectLease: 100 * time.Second, VolumeLease: 10 * time.Second}, 10 * time.Second},
		{Config{ObjectLease: 5 * time.Second, VolumeLease: 10 * time.Second}, 5 * time.Second},
		{Config{ObjectLease: 5 * time.Second}, 5 * time.Second},
		{Config{VolumeLease: 7 * time.Second}, 7 * time.Second},
		{Config{ObjectLease: 5 * time.Second, StalenessBound: time.Second}, time.Second},
		{Config{}, 0},
	}
	for i, tc := range cases {
		if got := tc.cfg.Bound(); got != tc.want {
			t.Errorf("case %d: Bound() = %v, want %v", i, got, tc.want)
		}
	}
}
