package wire

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
)

// sizeSamples covers every kind plus the encoding edge cases Size must
// mirror: zero times, absent traces, empty collections, negative varints,
// and large values that spill into multi-byte varints.
func sizeSamples() []Message {
	return []Message{
		Hello{Client: "client-7"},
		Hello{},
		ReqObjLease{Seq: 42, Object: "obj/1", Version: core.NoVersion},
		ReqObjLease{Seq: 1 << 60, Object: "obj/1", Version: 1 << 40},
		ObjLease{Seq: 42, Object: "obj/1", Version: 3, Expire: ts(100), HasData: true, Data: []byte("payload")},
		ObjLease{Seq: 43, Object: "obj/1", Version: 3, Expire: ts(100)},
		ObjLease{Seq: 1, Object: "o", Version: 1, HasData: true, Data: []byte{}},
		ObjLease{Seq: 1, Object: "o", Version: 1}, // zero time
		ReqVolLease{Seq: 1, Volume: "vol", Epoch: core.NoEpoch},
		VolLease{Seq: 1, Volume: "vol", Expire: ts(10), Epoch: 5},
		Invalidate{Objects: []core.ObjectID{"a", "b"}},
		Invalidate{Seq: 1},
		Invalidate{Seq: 2, Objects: []core.ObjectID{"a"}, Trace: TraceContext{TraceID: 7, SpanID: 9}},
		AckInvalidate{Seq: 9, Volume: "vol", Objects: []core.ObjectID{"a"}},
		AckInvalidate{Seq: 9, Volume: "vol", Trace: TraceContext{TraceID: 1 << 50, SpanID: 3}},
		MustRenewAll{Seq: 2, Volume: "vol", Epoch: 6},
		RenewObjLeases{Seq: 2, Volume: "vol", Held: []core.HeldObject{{Object: "a", Version: 1}, {Object: "b", Version: 2}}},
		RenewObjLeases{Seq: 1, Volume: "v"},
		InvalRenew{Seq: 2, Volume: "vol",
			Invalidate: []core.ObjectID{"a"},
			Renew:      []LeaseMeta{{Object: "b", Version: 2, Expire: ts(50)}, {Object: "c", Version: 3}}},
		InvalRenew{Seq: 1, Volume: "v"},
		WriteReq{Seq: 7, Object: "obj", Data: []byte{0, 1, 2, 255}},
		WriteReq{Seq: 7, Object: "obj", Data: []byte{}, Trace: TraceContext{TraceID: 4, SpanID: 5}},
		WriteReply{Seq: 7, Object: "obj", Version: 9, Waited: 1500 * time.Millisecond},
		WriteReply{Seq: 7, Object: "obj", Version: 9, Waited: -time.Second, Trace: TraceContext{TraceID: 4, SpanID: 6}},
		Error{Seq: 3, Code: ErrCodeNoSuchObject, Msg: "obj not found"},
		Error{},
	}
}

func TestSizeMatchesEncode(t *testing.T) {
	for _, m := range sizeSamples() {
		buf, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode(%#v): %v", m, err)
		}
		if got := Size(m); got != len(buf) {
			t.Errorf("Size(%#v) = %d, want %d (encoded length)", m, got, len(buf))
		}
	}
}

func TestSizeMatchesEncodeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randStr := func(n int) string {
		b := make([]byte, rng.Intn(n))
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return string(b)
	}
	for i := 0; i < 500; i++ {
		var m Message
		switch rng.Intn(5) {
		case 0:
			m = ReqObjLease{Seq: rng.Uint64(), Object: core.ObjectID(randStr(40)), Version: core.Version(rng.Int63() - rng.Int63())}
		case 1:
			m = ObjLease{Seq: rng.Uint64(), Object: core.ObjectID(randStr(40)), Version: core.Version(rng.Int63()),
				Expire: time.Unix(rng.Int63n(1<<33), rng.Int63n(1e9)), HasData: rng.Intn(2) == 1, Data: []byte(randStr(200))}
		case 2:
			objs := make([]core.ObjectID, rng.Intn(5))
			for j := range objs {
				objs[j] = core.ObjectID(randStr(20))
			}
			m = Invalidate{Seq: rng.Uint64(), Objects: objs, Trace: TraceContext{TraceID: rng.Uint64(), SpanID: rng.Uint64()}}
		case 3:
			held := make([]core.HeldObject, rng.Intn(6))
			for j := range held {
				held[j] = core.HeldObject{Object: core.ObjectID(randStr(20)), Version: core.Version(rng.Int63())}
			}
			m = RenewObjLeases{Seq: rng.Uint64(), Volume: core.VolumeID(randStr(16)), Held: held}
		default:
			m = WriteReply{Seq: rng.Uint64(), Object: core.ObjectID(randStr(30)), Version: core.Version(rng.Int63()),
				Waited: time.Duration(rng.Int63() - rng.Int63()), Trace: TraceContext{TraceID: rng.Uint64()}}
		}
		// ObjLease with HasData=false must not count Data; clear it so the
		// fixture stays canonical.
		if v, ok := m.(ObjLease); ok && !v.HasData {
			v.Data = nil
			m = v
		}
		buf, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode(%#v): %v", m, err)
		}
		if got := Size(m); got != len(buf) {
			t.Fatalf("Size(%#v) = %d, want %d", m, got, len(buf))
		}
	}
}

func TestSizeUnknownType(t *testing.T) {
	if got := Size(fakeMsg{}); got != 0 {
		t.Errorf("Size(bogus) = %d, want 0", got)
	}
}

func TestSizeAllocationFree(t *testing.T) {
	msgs := sizeSamples()
	allocs := testing.AllocsPerRun(100, func() {
		for _, m := range msgs {
			Size(m)
		}
	})
	if allocs != 0 {
		t.Errorf("Size allocates %.1f times per sweep, want 0", allocs)
	}
}
