package wire

import (
	"math/bits"
	"time"

	"repro/internal/core"
)

// Size returns the exact encoded length of m in bytes (kind byte + body,
// excluding the 4-byte frame header), without allocating. It mirrors Encode
// field for field so accounting layers can charge byte costs on transports
// that never serialize (the in-memory network passes Message values through
// channels). Unknown message types — which Encode rejects — size to 0.
//
// TestSizeMatchesEncode pins Size(m) == len(Encode(m)) for every kind.
func Size(m Message) int {
	n := 1 // kind byte
	switch v := m.(type) {
	case Hello:
		n += sizeStr(string(v.Client))
	case ReqObjLease:
		n += sizeUv(v.Seq)
		n += sizeStr(string(v.Object))
		n += sizeIv(int64(v.Version))
	case ObjLease:
		n += sizeUv(v.Seq)
		n += sizeStr(string(v.Object))
		n += sizeIv(int64(v.Version))
		n += sizeTime(v.Expire)
		n++ // HasData bool
		if v.HasData {
			n += sizeUv(uint64(len(v.Data))) + len(v.Data)
		}
	case ReqVolLease:
		n += sizeUv(v.Seq)
		n += sizeStr(string(v.Volume))
		n += sizeIv(int64(v.Epoch))
	case VolLease:
		n += sizeUv(v.Seq)
		n += sizeStr(string(v.Volume))
		n += sizeTime(v.Expire)
		n += sizeIv(int64(v.Epoch))
	case Invalidate:
		n += sizeUv(v.Seq)
		n += sizeObjects(v.Objects)
		n += sizeTrace(v.Trace)
	case AckInvalidate:
		n += sizeUv(v.Seq)
		n += sizeStr(string(v.Volume))
		n += sizeObjects(v.Objects)
		n += sizeTrace(v.Trace)
	case MustRenewAll:
		n += sizeUv(v.Seq)
		n += sizeStr(string(v.Volume))
		n += sizeIv(int64(v.Epoch))
	case RenewObjLeases:
		n += sizeUv(v.Seq)
		n += sizeStr(string(v.Volume))
		n += sizeUv(uint64(len(v.Held)))
		for _, h := range v.Held {
			n += sizeStr(string(h.Object))
			n += sizeIv(int64(h.Version))
		}
	case InvalRenew:
		n += sizeUv(v.Seq)
		n += sizeStr(string(v.Volume))
		n += sizeObjects(v.Invalidate)
		n += sizeUv(uint64(len(v.Renew)))
		for _, r := range v.Renew {
			n += sizeStr(string(r.Object))
			n += sizeIv(int64(r.Version))
			n += sizeTime(r.Expire)
		}
	case WriteReq:
		n += sizeUv(v.Seq)
		n += sizeStr(string(v.Object))
		n += sizeUv(uint64(len(v.Data))) + len(v.Data)
		n += sizeTrace(v.Trace)
	case WriteReply:
		n += sizeUv(v.Seq)
		n += sizeStr(string(v.Object))
		n += sizeIv(int64(v.Version))
		n += sizeIv(int64(v.Waited))
		n += sizeTrace(v.Trace)
	case Error:
		n += sizeUv(v.Seq)
		n++ // code byte
		n += sizeStr(v.Msg)
	default:
		return 0
	}
	return n
}

// sizeUv is the byte length of binary.AppendUvarint(nil, v): 7 payload bits
// per byte, at least one byte.
func sizeUv(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// sizeIv is the byte length of binary.AppendVarint(nil, v), which zig-zag
// maps the signed value before uvarint encoding.
func sizeIv(v int64) int {
	return sizeUv(uint64(v)<<1 ^ uint64(v>>63))
}

func sizeStr(s string) int {
	return sizeUv(uint64(len(s))) + len(s)
}

// sizeTime mirrors encoder.time: the zero time encodes as the zeroTimeNano
// sentinel, everything else as varint UnixNano. The clamp for a timestamp
// landing exactly on the sentinel changes the value by 1ns, not the varint
// width, so sizing by the raw UnixNano stays exact.
func sizeTime(t time.Time) int {
	if t.IsZero() {
		return sizeIv(zeroTimeNano)
	}
	return sizeIv(t.UnixNano())
}

func sizeObjects(ids []core.ObjectID) int {
	n := sizeUv(uint64(len(ids)))
	for _, id := range ids {
		n += sizeStr(string(id))
	}
	return n
}

// sizeTrace mirrors encoder.trace: a zero context is absent from the wire.
func sizeTrace(t TraceContext) int {
	if t.IsZero() {
		return 0
	}
	return sizeUv(t.TraceID) + sizeUv(t.SpanID)
}
