package wire

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
)

// epochTime builds a timestamp n nanoseconds from the Unix epoch.
func epochTime(n int64) time.Time { return time.Unix(0, n) }

// FuzzDecode checks that no input can panic the decoder, and that anything
// it accepts re-encodes and re-decodes to the same bytes (canonical form).
func FuzzDecode(f *testing.F) {
	seeds := []Message{
		Hello{Client: "c"},
		ReqObjLease{Seq: 1, Object: "o", Version: core.NoVersion},
		ObjLease{Seq: 2, Object: "o", Version: 3, HasData: true, Data: []byte("d")},
		InvalRenew{Seq: 3, Volume: "v", Invalidate: []core.ObjectID{"a"},
			Renew: []LeaseMeta{{Object: "b", Version: 1}}},
		RenewObjLeases{Seq: 4, Volume: "v", Held: []core.HeldObject{{Object: "a", Version: 2}}},
		Error{Seq: 5, Code: ErrCodeBadRequest, Msg: "m"},
		// Trace-context variants: present, absent, and partially-populated,
		// so the fuzzer explores the optional trailing section from both
		// sides of the compatibility boundary.
		WriteReq{Seq: 6, Object: "o", Data: []byte("d"),
			Trace: TraceContext{TraceID: 7, SpanID: 8}},
		WriteReq{Seq: 6, Object: "o", Data: []byte("d")},
		WriteReply{Seq: 6, Object: "o", Version: 1,
			Trace: TraceContext{TraceID: 1 << 33, SpanID: 2}},
		Invalidate{Objects: []core.ObjectID{"a"},
			Trace: TraceContext{TraceID: 9, SpanID: 10}},
		AckInvalidate{Volume: "v", Objects: []core.ObjectID{"a"},
			Trace: TraceContext{SpanID: 11}},
		// Timestamp edges around the zero-time sentinel: the zero time
		// (encodes as math.MinInt64), the Unix epoch (UnixNano()==0, a
		// legitimate value that must NOT collapse to the zero time), and
		// timestamps adjacent to both.
		ObjLease{Seq: 7, Object: "o", Version: 1},
		ObjLease{Seq: 7, Object: "o", Version: 1, Expire: epochTime(0)},
		VolLease{Seq: 8, Volume: "v", Epoch: 1, Expire: epochTime(1)},
		VolLease{Seq: 8, Volume: "v", Epoch: 1, Expire: epochTime(-1)},
		InvalRenew{Seq: 9, Volume: "v",
			Renew: []LeaseMeta{{Object: "b", Version: 1, Expire: epochTime(0)}}},
	}
	for _, m := range seeds {
		buf, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Normalization property: anything the decoder accepts re-encodes
		// to a stable canonical form (one decode/encode pass is a fixed
		// point; inputs may use non-minimal varints).
		out1, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded %T but cannot re-encode: %v", m, err)
		}
		m2, err := Decode(out1)
		if err != nil {
			t.Fatalf("canonical form does not decode: %v", err)
		}
		out2, err := Encode(m2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(out1, out2) {
			t.Fatalf("encoding not a fixed point:\n out1 %x\n out2 %x", out1, out2)
		}
		if m2.Kind() != m.Kind() || m2.Sequence() != m.Sequence() {
			t.Fatalf("round trip changed identity: %#v vs %#v", m, m2)
		}
	})
}
