package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

// TestAppendEncodeMatchesEncode pins the encode-symmetry contract: for
// every message kind, AppendEncode into an empty buffer produces exactly
// the bytes Encode does. The batcher and the accounting layer both rely on
// the two forms being interchangeable on the wire.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	msgs := append(benchMessages(),
		// Edge shapes the bench set doesn't cover: zero values, empty
		// collections, zero and epoch timestamps.
		Hello{},
		ObjLease{Seq: 1, Object: "o", Version: 1},                          // zero Expire
		ObjLease{Seq: 1, Object: "o", Version: 1, Expire: time.Unix(0, 0)}, // epoch Expire
		Invalidate{Seq: 2},
		RenewObjLeases{Seq: 3, Volume: "v"},
		InvalRenew{Seq: 4, Volume: "v"},
	)
	seen := make(map[Kind]bool)
	for _, m := range msgs {
		seen[m.Kind()] = true
		want, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode(%#v): %v", m, err)
		}
		got, err := AppendEncode(nil, m)
		if err != nil {
			t.Fatalf("AppendEncode(nil, %#v): %v", m, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: AppendEncode(nil) = %x, Encode = %x", m.Kind(), got, want)
		}
	}
	for k := Kind(1); k < Kind(NumKinds); k++ {
		if !seen[k] {
			t.Errorf("no test message covers kind %s; extend benchMessages or the edge list", k)
		}
	}
}

// TestAppendEncodeAppends verifies dst's existing contents are preserved
// and the frame-size limit applies to the appended portion only.
func TestAppendEncodeAppends(t *testing.T) {
	prefix := []byte("prefix")
	m := Hello{Client: "c"}
	want, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AppendEncode(append([]byte(nil), prefix...), m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, prefix) {
		t.Fatalf("prefix clobbered: %x", got)
	}
	if !bytes.Equal(got[len(prefix):], want) {
		t.Errorf("appended portion = %x, want %x", got[len(prefix):], want)
	}
}

// TestEpochTimeRoundTrip covers the sentinel-collision bug: a legitimate
// timestamp of exactly UnixNano()==0 (the Unix epoch) must survive the
// round trip instead of silently decoding as the zero time.
func TestEpochTimeRoundTrip(t *testing.T) {
	epoch := time.Unix(0, 0)
	m := ObjLease{Seq: 1, Object: "o", Version: 1, Expire: epoch}
	got := roundTrip(t, m).(ObjLease)
	if got.Expire.IsZero() {
		t.Fatal("epoch expire decoded as the zero time (sentinel collision)")
	}
	if got.Expire.UnixNano() != 0 {
		t.Errorf("epoch expire decoded as %v", got.Expire)
	}
}

// TestTimeSentinelBytes pins the wire representation: zero time encodes as
// the math.MinInt64 sentinel and nothing else does — a timestamp landing
// exactly on the sentinel is clamped by one nanosecond.
func TestTimeSentinelBytes(t *testing.T) {
	var e encoder
	e.time(time.Time{})
	var zero encoder
	zero.i64(math.MinInt64)
	if !bytes.Equal(e.buf, zero.buf) {
		t.Errorf("zero time = %x, want sentinel %x", e.buf, zero.buf)
	}

	var clamp encoder
	clamp.time(time.Unix(0, math.MinInt64))
	var next encoder
	next.i64(math.MinInt64 + 1)
	if !bytes.Equal(clamp.buf, next.buf) {
		t.Errorf("sentinel-valued timestamp = %x, want clamped %x", clamp.buf, next.buf)
	}
}

// TestTimeRoundTripProperty is the quick-check property: any representable
// timestamp round-trips exactly, and the zero time stays distinguishable
// from all of them (modulo the documented 1ns clamp at the sentinel).
func TestTimeRoundTripProperty(t *testing.T) {
	prop := func(nanos int64) bool {
		in := time.Unix(0, nanos)
		if in.IsZero() {
			return true // not representable as a non-zero time
		}
		m := VolLease{Seq: 1, Volume: "v", Expire: in, Epoch: 1}
		buf, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		out := got.(VolLease).Expire
		if nanos == math.MinInt64 {
			return out.UnixNano() == nanos+1 // clamped off the sentinel
		}
		return !out.IsZero() && out.UnixNano() == nanos
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
	// The generator rarely hits the exact edges; check them directly.
	for _, nanos := range []int64{0, 1, -1, math.MinInt64, math.MinInt64 + 1, math.MaxInt64} {
		if !prop(nanos) {
			t.Errorf("property fails at nanos=%d", nanos)
		}
	}
}

// TestReadFrameBufRoundTrip exercises the pooled read path: frame in,
// pooled buffer out, decode, release, and the pool hands the same backing
// array to the next read.
func TestReadFrameBufRoundTrip(t *testing.T) {
	m := Invalidate{Seq: 7, Objects: []core.ObjectID{"a", "b"}}
	var wireBytes bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := WriteFrame(&wireBytes, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		buf, err := ReadFrameBuf(&wireBytes)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := Decode(buf.B)
		buf.Release()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		assertEqual(t, got, m)
	}
}

// TestBufReleaseBounds verifies release semantics: nil-safe, and oversized
// buffers are dropped rather than pooled.
func TestBufReleaseBounds(t *testing.T) {
	var nilBuf *Buf
	nilBuf.Release() // must not panic

	big := &Buf{B: make([]byte, maxPooledBuf+1)}
	big.Release()
	if got := GetBuf(); cap(got.B) > maxPooledBuf {
		t.Errorf("oversized buffer (cap %d) re-entered the pool", cap(got.B))
	}
}
