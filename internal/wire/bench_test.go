package wire

import (
	"testing"
	"time"

	"repro/internal/core"
)

// benchMessages is one representative message per kind, shaped like the
// traffic the server actually sees (short IDs, small payloads, live trace
// contexts on the write path). BenchmarkWirePath over this set is the
// canonical wire-path cost baseline: ROADMAP item 1 (batched framing,
// buffer pooling, zero-copy) must beat these numbers under
// cmd/benchdiff before it lands.
func benchMessages() []Message {
	expire := time.Unix(1000, 0)
	return []Message{
		Hello{Client: "client-17"},
		ReqObjLease{Seq: 42, Object: "vol-3/obj-100", Version: 7},
		ObjLease{Seq: 42, Object: "vol-3/obj-100", Version: 8, Expire: expire, HasData: true, Data: make([]byte, 256)},
		ReqVolLease{Seq: 43, Volume: "vol-3", Epoch: 5},
		VolLease{Seq: 43, Volume: "vol-3", Expire: expire, Epoch: 5},
		Invalidate{Seq: 0, Objects: []core.ObjectID{"vol-3/obj-100", "vol-3/obj-101"}, Trace: TraceContext{TraceID: 9, SpanID: 4}},
		AckInvalidate{Seq: 0, Volume: "vol-3", Objects: []core.ObjectID{"vol-3/obj-100", "vol-3/obj-101"}, Trace: TraceContext{TraceID: 9, SpanID: 5}},
		MustRenewAll{Seq: 44, Volume: "vol-3", Epoch: 5},
		RenewObjLeases{Seq: 44, Volume: "vol-3", Held: []core.HeldObject{
			{Object: "vol-3/obj-100", Version: 7}, {Object: "vol-3/obj-101", Version: 2}, {Object: "vol-3/obj-102", Version: 1},
		}},
		InvalRenew{Seq: 44, Volume: "vol-3",
			Invalidate: []core.ObjectID{"vol-3/obj-100"},
			Renew:      []LeaseMeta{{Object: "vol-3/obj-101", Version: 2, Expire: expire}, {Object: "vol-3/obj-102", Version: 1, Expire: expire}}},
		WriteReq{Seq: 45, Object: "vol-3/obj-100", Data: make([]byte, 256), Trace: TraceContext{TraceID: 9, SpanID: 1}},
		WriteReply{Seq: 45, Object: "vol-3/obj-100", Version: 9, Waited: 12 * time.Millisecond, Trace: TraceContext{TraceID: 9, SpanID: 1}},
		Error{Seq: 46, Code: ErrCodeNoSuchObject, Msg: "no such object"},
	}
}

// BenchmarkWirePath measures encode, decode, and full round-trip cost per
// wire kind (run with -benchmem for allocs/op and B/op). The sub-benchmark
// names are stable — cmd/benchdiff matches on them — so add kinds, don't
// rename.
func BenchmarkWirePath(b *testing.B) {
	for _, m := range benchMessages() {
		m := m
		b.Run("encode/"+m.Kind().String(), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(Size(m)))
			for i := 0; i < b.N; i++ {
				if _, err := Encode(m); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("append/"+m.Kind().String(), func(b *testing.B) {
			// The pooled form: encoding into a reused buffer must not
			// allocate — this is the batched send path's per-message cost.
			b.ReportAllocs()
			b.SetBytes(int64(Size(m)))
			dst := make([]byte, 0, Size(m))
			for i := 0; i < b.N; i++ {
				enc, err := AppendEncode(dst[:0], m)
				if err != nil {
					b.Fatal(err)
				}
				dst = enc[:0]
			}
		})
		buf, err := Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("decode/"+m.Kind().String(), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				if _, err := Decode(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("roundtrip/"+m.Kind().String(), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				enc, err := Encode(m)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Decode(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireSize pins the sizing pass itself: it must stay far cheaper
// than Encode (no allocation) or per-frame accounting would tax the hot
// path it is supposed to measure.
func BenchmarkWireSize(b *testing.B) {
	msgs := benchMessages()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, m := range msgs {
			Size(m)
		}
	}
}
