package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/core"
)

// MaxFrame bounds a single message on the wire; larger frames are rejected
// before allocation so a corrupt length prefix cannot exhaust memory.
const MaxFrame = 16 << 20

// Codec errors.
var (
	// ErrFrameTooLarge reports a frame exceeding MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrTruncated reports a payload shorter than its fields require.
	ErrTruncated = errors.New("wire: truncated message")
	// ErrUnknownKind reports an unrecognized kind byte.
	ErrUnknownKind = errors.New("wire: unknown message kind")
)

// Encode serializes m as kind byte + body (no frame header). It is
// AppendEncode into a fresh buffer; hot paths that can reuse a buffer
// should call AppendEncode directly.
func Encode(m Message) ([]byte, error) { return AppendEncode(nil, m) }

// AppendEncode appends m's encoding (kind byte + body, no frame header) to
// dst and returns the extended slice. When dst has enough capacity the call
// does not allocate, which is what keeps the batched send path at zero
// allocations per message. Only the appended portion is bounded by
// MaxFrame; bytes already in dst don't count against the frame limit.
//
//lint:hotpath
func AppendEncode(dst []byte, m Message) ([]byte, error) {
	e := encoder{buf: dst}
	start := len(dst)
	e.u8(uint8(m.Kind()))
	switch v := m.(type) {
	case Hello:
		e.str(string(v.Client))
	case ReqObjLease:
		e.u64(v.Seq)
		e.str(string(v.Object))
		e.i64(int64(v.Version))
	case ObjLease:
		e.u64(v.Seq)
		e.str(string(v.Object))
		e.i64(int64(v.Version))
		e.time(v.Expire)
		e.bool(v.HasData)
		if v.HasData {
			e.bytes(v.Data)
		}
	case ReqVolLease:
		e.u64(v.Seq)
		e.str(string(v.Volume))
		e.i64(int64(v.Epoch))
	case VolLease:
		e.u64(v.Seq)
		e.str(string(v.Volume))
		e.time(v.Expire)
		e.i64(int64(v.Epoch))
	case Invalidate:
		e.u64(v.Seq)
		e.objects(v.Objects)
		e.trace(v.Trace)
	case AckInvalidate:
		e.u64(v.Seq)
		e.str(string(v.Volume))
		e.objects(v.Objects)
		e.trace(v.Trace)
	case MustRenewAll:
		e.u64(v.Seq)
		e.str(string(v.Volume))
		e.i64(int64(v.Epoch))
	case RenewObjLeases:
		e.u64(v.Seq)
		e.str(string(v.Volume))
		e.uv(uint64(len(v.Held)))
		for _, h := range v.Held {
			e.str(string(h.Object))
			e.i64(int64(h.Version))
		}
	case InvalRenew:
		e.u64(v.Seq)
		e.str(string(v.Volume))
		e.objects(v.Invalidate)
		e.uv(uint64(len(v.Renew)))
		for _, r := range v.Renew {
			e.str(string(r.Object))
			e.i64(int64(r.Version))
			e.time(r.Expire)
		}
	case WriteReq:
		e.u64(v.Seq)
		e.str(string(v.Object))
		e.bytes(v.Data)
		e.trace(v.Trace)
	case WriteReply:
		e.u64(v.Seq)
		e.str(string(v.Object))
		e.i64(int64(v.Version))
		e.i64(int64(v.Waited))
		e.trace(v.Trace)
	case Error:
		e.u64(v.Seq)
		e.u8(uint8(v.Code))
		e.str(v.Msg)
	default:
		//lint:allow hotalloc — programmer-error branch (unknown message type); never taken for valid traffic
		return nil, fmt.Errorf("wire: cannot encode %T", m)
	}
	if len(e.buf)-start > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	return e.buf, nil
}

// Decode parses a message previously produced by Encode.
func Decode(buf []byte) (Message, error) {
	d := decoder{buf: buf}
	kind := Kind(d.u8())
	switch kind {
	case KindHello:
		m := Hello{Client: core.ClientID(d.str())}
		return m, d.finish()
	case KindReqObjLease:
		m := ReqObjLease{Seq: d.u64(), Object: core.ObjectID(d.str()), Version: core.Version(d.i64())}
		return m, d.finish()
	case KindObjLease:
		m := ObjLease{Seq: d.u64(), Object: core.ObjectID(d.str()), Version: core.Version(d.i64()), Expire: d.time()}
		m.HasData = d.bool()
		if m.HasData {
			m.Data = d.bytes()
		}
		return m, d.finish()
	case KindReqVolLease:
		m := ReqVolLease{Seq: d.u64(), Volume: core.VolumeID(d.str()), Epoch: core.Epoch(d.i64())}
		return m, d.finish()
	case KindVolLease:
		m := VolLease{Seq: d.u64(), Volume: core.VolumeID(d.str()), Expire: d.time(), Epoch: core.Epoch(d.i64())}
		return m, d.finish()
	case KindInvalidate:
		m := Invalidate{Seq: d.u64(), Objects: d.objects()}
		m.Trace = d.trace()
		return m, d.finish()
	case KindAckInvalidate:
		m := AckInvalidate{Seq: d.u64(), Volume: core.VolumeID(d.str()), Objects: d.objects()}
		m.Trace = d.trace()
		return m, d.finish()
	case KindMustRenewAll:
		m := MustRenewAll{Seq: d.u64(), Volume: core.VolumeID(d.str()), Epoch: core.Epoch(d.i64())}
		return m, d.finish()
	case KindRenewObjLeases:
		m := RenewObjLeases{Seq: d.u64(), Volume: core.VolumeID(d.str())}
		n := d.uv()
		if n > uint64(len(d.buf)) {
			d.fail()
			return nil, d.finish()
		}
		m.Held = make([]core.HeldObject, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			m.Held = append(m.Held, core.HeldObject{Object: core.ObjectID(d.str()), Version: core.Version(d.i64())})
		}
		return m, d.finish()
	case KindInvalRenew:
		m := InvalRenew{Seq: d.u64(), Volume: core.VolumeID(d.str()), Invalidate: d.objects()}
		n := d.uv()
		if n > uint64(len(d.buf)) {
			d.fail()
			return nil, d.finish()
		}
		m.Renew = make([]LeaseMeta, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			m.Renew = append(m.Renew, LeaseMeta{
				Object:  core.ObjectID(d.str()),
				Version: core.Version(d.i64()),
				Expire:  d.time(),
			})
		}
		return m, d.finish()
	case KindWriteReq:
		m := WriteReq{Seq: d.u64(), Object: core.ObjectID(d.str()), Data: d.bytes()}
		m.Trace = d.trace()
		return m, d.finish()
	case KindWriteReply:
		m := WriteReply{Seq: d.u64(), Object: core.ObjectID(d.str()), Version: core.Version(d.i64()), Waited: time.Duration(d.i64())}
		m.Trace = d.trace()
		return m, d.finish()
	case KindError:
		m := Error{Seq: d.u64(), Code: ErrorCode(d.u8()), Msg: d.str()}
		return m, d.finish()
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, uint8(kind))
	}
}

// WriteFrame writes m to w with a 4-byte big-endian length prefix.
func WriteFrame(w io.Writer, m Message) error {
	body, err := Encode(m)
	if err != nil {
		return err
	}
	return WriteFrameBytes(w, body)
}

// WriteFrameBytes writes an already-encoded frame body with its 4-byte
// big-endian length prefix. Callers that need to time or account the encode
// step separately (the cost layer) encode first and hand the bytes here.
func WriteFrameBytes(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed message from r.
func ReadFrame(r io.Reader) (Message, error) {
	buf, err := ReadFrameBuf(r)
	if err != nil {
		return nil, err
	}
	m, err := Decode(buf.B)
	buf.Release()
	return m, err
}

// ReadFrameBytes reads one length-prefixed frame body from r without
// decoding it, so callers can separate blocking-read time from decode time.
// The returned slice is freshly allocated and owned by the caller; hot
// paths that can release the body promptly should use ReadFrameBuf.
func ReadFrameBytes(r io.Reader) ([]byte, error) {
	buf, err := ReadFrameBuf(r)
	if err != nil {
		return nil, err
	}
	body := make([]byte, len(buf.B))
	copy(body, buf.B)
	buf.Release()
	return body, nil
}

// ReadFrameBuf reads one length-prefixed frame body from r into a pooled
// buffer. The caller owns the returned Buf and must Release it once the
// body has been decoded (Decode copies every variable-length field, so the
// decoded message never aliases the buffer).
func ReadFrameBuf(r io.Reader) (*Buf, error) {
	// The header is read into the pooled buffer rather than a local array:
	// a stack [4]byte would escape through the io.Reader interface call and
	// cost an allocation per frame.
	buf := GetBuf()
	if cap(buf.B) < 4 {
		//lint:allow hotalloc — pool refill: runs once per fresh Buf, amortized to zero in steady state
		buf.B = make([]byte, 4, 512)
	}
	buf.B = buf.B[:4]
	if _, err := io.ReadFull(r, buf.B); err != nil {
		buf.Release()
		return nil, err // io.EOF passes through for clean shutdown detection
	}
	n := binary.BigEndian.Uint32(buf.B)
	if n > MaxFrame {
		buf.Release()
		return nil, ErrFrameTooLarge
	}
	if uint32(cap(buf.B)) < n {
		//lint:allow hotalloc — jumbo-frame growth: the grown buffer is retained by the pool, so this amortizes to zero
		buf.B = make([]byte, n)
	} else {
		buf.B = buf.B[:n]
	}
	if _, err := io.ReadFull(r, buf.B); err != nil {
		buf.Release()
		//lint:allow hotalloc — error branch: truncated frame means the peer is gone; the read loop exits
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	return buf, nil
}

// --- pooled frame buffers ---

// Buf is a pooled byte buffer holding one encoded frame body. Ownership is
// explicit and transfers exactly once: whoever holds a Buf either hands it
// to the next stage (which then owns it) or calls Release. Releasing makes
// the backing array eligible for reuse, so neither B nor anything aliasing
// it may be touched afterwards.
type Buf struct {
	B []byte
}

// maxPooledBuf caps the capacity of buffers returned to the pool so a rare
// jumbo frame (up to MaxFrame) doesn't pin megabytes for the steady state
// of sub-kilobyte lease messages.
const maxPooledBuf = 64 << 10

var bufPool = sync.Pool{New: func() any { return &Buf{B: make([]byte, 0, 512)} }}

// GetBuf returns an empty pooled buffer. Pass it back with Release (or hand
// it to an owner that will) once done.
func GetBuf() *Buf {
	return bufPool.Get().(*Buf)
}

// Release returns the buffer to the pool. Safe on a nil Buf; oversized
// backing arrays are dropped for the garbage collector instead of pooled.
func (b *Buf) Release() {
	if b == nil || cap(b.B) > maxPooledBuf {
		return
	}
	b.B = b.B[:0]
	bufPool.Put(b)
}

// --- primitive encoder/decoder ---

type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) uv(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) u64(v uint64) { e.uv(v) }
func (e *encoder) i64(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) str(s string) {
	e.uv(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) bytes(b []byte) {
	e.uv(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// zeroTimeNano is the wire sentinel for the zero time.Time: math.MinInt64
// nanoseconds, the year-1677 edge of the representable range, which no
// lease timestamp can legitimately carry (the encoder clamps a real
// timestamp landing exactly there by one nanosecond). The previous sentinel
// was 0, which collided with UnixNano()==0 — the Unix epoch — so an epoch
// Expire silently round-tripped to the zero time. Compat: frames from
// peers predating this change encode the zero time as 0 and now decode as
// the epoch; every expiry comparison treats both as "expired long ago", so
// mixed-version operation is safe.
const zeroTimeNano = math.MinInt64

// time encodes as varint Unix nanoseconds; the zero time is encoded as the
// zeroTimeNano sentinel and restored exactly.
func (e *encoder) time(t time.Time) {
	if t.IsZero() {
		e.i64(zeroTimeNano)
		return
	}
	n := t.UnixNano()
	if n == zeroTimeNano {
		n++ // reserved for the zero time; clamp by 1ns (same varint width)
	}
	e.i64(n)
}

func (e *encoder) objects(ids []core.ObjectID) {
	e.uv(uint64(len(ids)))
	for _, id := range ids {
		e.str(string(id))
	}
}

// trace encodes a trace context as an optional trailing section: nothing at
// all when the context is zero. Because it is the last field of every
// message that carries one, frames from peers that predate tracing (which
// simply end after the base fields) still decode — see decoder.trace.
func (e *encoder) trace(t TraceContext) {
	if t.IsZero() {
		return
	}
	e.uv(t.TraceID)
	e.uv(t.SpanID)
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
	d.buf = nil
}

func (d *decoder) u8() uint8 {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) u64() uint64 { return d.uv() }

func (d *decoder) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// bool accepts only the canonical encodings 0 and 1, so every accepted
// message re-encodes to identical bytes.
func (d *decoder) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail()
		return false
	}
}

func (d *decoder) str() string {
	n := d.uv()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) bytes() []byte {
	n := d.uv()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.fail()
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[:n])
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) time() time.Time {
	v := d.i64()
	if d.err != nil || v == zeroTimeNano {
		return time.Time{}
	}
	return time.Unix(0, v)
}

// trace decodes the optional trailing trace section. No bytes left means
// the sender didn't attach one (old peer or untraced message) and yields
// the zero context. A present-but-zero context is rejected as non-canonical
// so every accepted message re-encodes to identical bytes.
func (d *decoder) trace() TraceContext {
	if d.err != nil || len(d.buf) == 0 {
		return TraceContext{}
	}
	t := TraceContext{TraceID: d.uv(), SpanID: d.uv()}
	if d.err == nil && t.IsZero() {
		d.fail()
	}
	return t
}

func (d *decoder) objects() []core.ObjectID {
	n := d.uv()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.fail()
		return nil
	}
	out := make([]core.ObjectID, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, core.ObjectID(d.str()))
	}
	return out
}

// finish reports any accumulated decode error; trailing bytes are also an
// error (they indicate a framing bug).
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(d.buf))
	}
	return nil
}
