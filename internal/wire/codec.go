package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
)

// MaxFrame bounds a single message on the wire; larger frames are rejected
// before allocation so a corrupt length prefix cannot exhaust memory.
const MaxFrame = 16 << 20

// Codec errors.
var (
	// ErrFrameTooLarge reports a frame exceeding MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrTruncated reports a payload shorter than its fields require.
	ErrTruncated = errors.New("wire: truncated message")
	// ErrUnknownKind reports an unrecognized kind byte.
	ErrUnknownKind = errors.New("wire: unknown message kind")
)

// Encode serializes m as kind byte + body (no frame header).
func Encode(m Message) ([]byte, error) {
	var e encoder
	e.u8(uint8(m.Kind()))
	switch v := m.(type) {
	case Hello:
		e.str(string(v.Client))
	case ReqObjLease:
		e.u64(v.Seq)
		e.str(string(v.Object))
		e.i64(int64(v.Version))
	case ObjLease:
		e.u64(v.Seq)
		e.str(string(v.Object))
		e.i64(int64(v.Version))
		e.time(v.Expire)
		e.bool(v.HasData)
		if v.HasData {
			e.bytes(v.Data)
		}
	case ReqVolLease:
		e.u64(v.Seq)
		e.str(string(v.Volume))
		e.i64(int64(v.Epoch))
	case VolLease:
		e.u64(v.Seq)
		e.str(string(v.Volume))
		e.time(v.Expire)
		e.i64(int64(v.Epoch))
	case Invalidate:
		e.u64(v.Seq)
		e.objects(v.Objects)
		e.trace(v.Trace)
	case AckInvalidate:
		e.u64(v.Seq)
		e.str(string(v.Volume))
		e.objects(v.Objects)
		e.trace(v.Trace)
	case MustRenewAll:
		e.u64(v.Seq)
		e.str(string(v.Volume))
		e.i64(int64(v.Epoch))
	case RenewObjLeases:
		e.u64(v.Seq)
		e.str(string(v.Volume))
		e.uv(uint64(len(v.Held)))
		for _, h := range v.Held {
			e.str(string(h.Object))
			e.i64(int64(h.Version))
		}
	case InvalRenew:
		e.u64(v.Seq)
		e.str(string(v.Volume))
		e.objects(v.Invalidate)
		e.uv(uint64(len(v.Renew)))
		for _, r := range v.Renew {
			e.str(string(r.Object))
			e.i64(int64(r.Version))
			e.time(r.Expire)
		}
	case WriteReq:
		e.u64(v.Seq)
		e.str(string(v.Object))
		e.bytes(v.Data)
		e.trace(v.Trace)
	case WriteReply:
		e.u64(v.Seq)
		e.str(string(v.Object))
		e.i64(int64(v.Version))
		e.i64(int64(v.Waited))
		e.trace(v.Trace)
	case Error:
		e.u64(v.Seq)
		e.u8(uint8(v.Code))
		e.str(v.Msg)
	default:
		return nil, fmt.Errorf("wire: cannot encode %T", m)
	}
	if len(e.buf) > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	return e.buf, nil
}

// Decode parses a message previously produced by Encode.
func Decode(buf []byte) (Message, error) {
	d := decoder{buf: buf}
	kind := Kind(d.u8())
	switch kind {
	case KindHello:
		m := Hello{Client: core.ClientID(d.str())}
		return m, d.finish()
	case KindReqObjLease:
		m := ReqObjLease{Seq: d.u64(), Object: core.ObjectID(d.str()), Version: core.Version(d.i64())}
		return m, d.finish()
	case KindObjLease:
		m := ObjLease{Seq: d.u64(), Object: core.ObjectID(d.str()), Version: core.Version(d.i64()), Expire: d.time()}
		m.HasData = d.bool()
		if m.HasData {
			m.Data = d.bytes()
		}
		return m, d.finish()
	case KindReqVolLease:
		m := ReqVolLease{Seq: d.u64(), Volume: core.VolumeID(d.str()), Epoch: core.Epoch(d.i64())}
		return m, d.finish()
	case KindVolLease:
		m := VolLease{Seq: d.u64(), Volume: core.VolumeID(d.str()), Expire: d.time(), Epoch: core.Epoch(d.i64())}
		return m, d.finish()
	case KindInvalidate:
		m := Invalidate{Seq: d.u64(), Objects: d.objects()}
		m.Trace = d.trace()
		return m, d.finish()
	case KindAckInvalidate:
		m := AckInvalidate{Seq: d.u64(), Volume: core.VolumeID(d.str()), Objects: d.objects()}
		m.Trace = d.trace()
		return m, d.finish()
	case KindMustRenewAll:
		m := MustRenewAll{Seq: d.u64(), Volume: core.VolumeID(d.str()), Epoch: core.Epoch(d.i64())}
		return m, d.finish()
	case KindRenewObjLeases:
		m := RenewObjLeases{Seq: d.u64(), Volume: core.VolumeID(d.str())}
		n := d.uv()
		if n > uint64(len(d.buf)) {
			d.fail()
			return nil, d.finish()
		}
		m.Held = make([]core.HeldObject, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			m.Held = append(m.Held, core.HeldObject{Object: core.ObjectID(d.str()), Version: core.Version(d.i64())})
		}
		return m, d.finish()
	case KindInvalRenew:
		m := InvalRenew{Seq: d.u64(), Volume: core.VolumeID(d.str()), Invalidate: d.objects()}
		n := d.uv()
		if n > uint64(len(d.buf)) {
			d.fail()
			return nil, d.finish()
		}
		m.Renew = make([]LeaseMeta, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			m.Renew = append(m.Renew, LeaseMeta{
				Object:  core.ObjectID(d.str()),
				Version: core.Version(d.i64()),
				Expire:  d.time(),
			})
		}
		return m, d.finish()
	case KindWriteReq:
		m := WriteReq{Seq: d.u64(), Object: core.ObjectID(d.str()), Data: d.bytes()}
		m.Trace = d.trace()
		return m, d.finish()
	case KindWriteReply:
		m := WriteReply{Seq: d.u64(), Object: core.ObjectID(d.str()), Version: core.Version(d.i64()), Waited: time.Duration(d.i64())}
		m.Trace = d.trace()
		return m, d.finish()
	case KindError:
		m := Error{Seq: d.u64(), Code: ErrorCode(d.u8()), Msg: d.str()}
		return m, d.finish()
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, uint8(kind))
	}
}

// WriteFrame writes m to w with a 4-byte big-endian length prefix.
func WriteFrame(w io.Writer, m Message) error {
	body, err := Encode(m)
	if err != nil {
		return err
	}
	return WriteFrameBytes(w, body)
}

// WriteFrameBytes writes an already-encoded frame body with its 4-byte
// big-endian length prefix. Callers that need to time or account the encode
// step separately (the cost layer) encode first and hand the bytes here.
func WriteFrameBytes(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed message from r.
func ReadFrame(r io.Reader) (Message, error) {
	body, err := ReadFrameBytes(r)
	if err != nil {
		return nil, err
	}
	return Decode(body)
}

// ReadFrameBytes reads one length-prefixed frame body from r without
// decoding it, so callers can separate blocking-read time from decode time.
func ReadFrameBytes(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown detection
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	return body, nil
}

// --- primitive encoder/decoder ---

type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) uv(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) u64(v uint64) { e.uv(v) }
func (e *encoder) i64(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) str(s string) {
	e.uv(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) bytes(b []byte) {
	e.uv(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// time encodes as Unix nanoseconds; the zero time is encoded as math
// minimum and restored exactly.
func (e *encoder) time(t time.Time) {
	if t.IsZero() {
		e.i64(0)
		return
	}
	e.i64(t.UnixNano())
}

func (e *encoder) objects(ids []core.ObjectID) {
	e.uv(uint64(len(ids)))
	for _, id := range ids {
		e.str(string(id))
	}
}

// trace encodes a trace context as an optional trailing section: nothing at
// all when the context is zero. Because it is the last field of every
// message that carries one, frames from peers that predate tracing (which
// simply end after the base fields) still decode — see decoder.trace.
func (e *encoder) trace(t TraceContext) {
	if t.IsZero() {
		return
	}
	e.uv(t.TraceID)
	e.uv(t.SpanID)
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
	d.buf = nil
}

func (d *decoder) u8() uint8 {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) u64() uint64 { return d.uv() }

func (d *decoder) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// bool accepts only the canonical encodings 0 and 1, so every accepted
// message re-encodes to identical bytes.
func (d *decoder) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail()
		return false
	}
}

func (d *decoder) str() string {
	n := d.uv()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) bytes() []byte {
	n := d.uv()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.fail()
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[:n])
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) time() time.Time {
	v := d.i64()
	if d.err != nil || v == 0 {
		return time.Time{}
	}
	return time.Unix(0, v)
}

// trace decodes the optional trailing trace section. No bytes left means
// the sender didn't attach one (old peer or untraced message) and yields
// the zero context. A present-but-zero context is rejected as non-canonical
// so every accepted message re-encodes to identical bytes.
func (d *decoder) trace() TraceContext {
	if d.err != nil || len(d.buf) == 0 {
		return TraceContext{}
	}
	t := TraceContext{TraceID: d.uv(), SpanID: d.uv()}
	if d.err == nil && t.IsZero() {
		d.fail()
	}
	return t
}

func (d *decoder) objects() []core.ObjectID {
	n := d.uv()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.fail()
		return nil
	}
	out := make([]core.ObjectID, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, core.ObjectID(d.str()))
	}
	return out
}

// finish reports any accumulated decode error; trailing bytes are also an
// error (they indicate a framing bug).
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(d.buf))
	}
	return nil
}
