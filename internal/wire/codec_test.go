package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

func ts(sec int64) time.Time { return time.Unix(sec, 500).UTC() }

// roundTrip encodes and decodes m, failing on error.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	buf, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode(%+v): %v", m, err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode(%+v): %v", m, err)
	}
	return got
}

// timesEqual compares two messages for semantic equality, normalizing
// time.Time location differences.
func assertEqual(t *testing.T, got, want Message) {
	t.Helper()
	g, w := normalize(got), normalize(want)
	if !reflect.DeepEqual(g, w) {
		t.Errorf("round trip mismatch:\n got %#v\nwant %#v", g, w)
	}
}

// normalize rewrites time fields to UTC so DeepEqual ignores locations.
func normalize(m Message) Message {
	switch v := m.(type) {
	case ObjLease:
		v.Expire = v.Expire.UTC()
		return v
	case VolLease:
		v.Expire = v.Expire.UTC()
		return v
	case InvalRenew:
		for i := range v.Renew {
			v.Renew[i].Expire = v.Renew[i].Expire.UTC()
		}
		return v
	default:
		return m
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	msgs := []Message{
		Hello{Client: "client-7"},
		ReqObjLease{Seq: 42, Object: "obj/1", Version: core.NoVersion},
		ObjLease{Seq: 42, Object: "obj/1", Version: 3, Expire: ts(100), HasData: true, Data: []byte("payload")},
		ObjLease{Seq: 43, Object: "obj/1", Version: 3, Expire: ts(100)},
		ReqVolLease{Seq: 1, Volume: "vol", Epoch: core.NoEpoch},
		VolLease{Seq: 1, Volume: "vol", Expire: ts(10), Epoch: 5},
		Invalidate{Objects: []core.ObjectID{"a", "b"}},
		AckInvalidate{Seq: 9, Volume: "vol", Objects: []core.ObjectID{"a"}},
		MustRenewAll{Seq: 2, Volume: "vol", Epoch: 6},
		RenewObjLeases{Seq: 2, Volume: "vol", Held: []core.HeldObject{{Object: "a", Version: 1}, {Object: "b", Version: 2}}},
		InvalRenew{Seq: 2, Volume: "vol",
			Invalidate: []core.ObjectID{"a"},
			Renew:      []LeaseMeta{{Object: "b", Version: 2, Expire: ts(50)}}},
		WriteReq{Seq: 7, Object: "obj", Data: []byte{0, 1, 2, 255}},
		WriteReply{Seq: 7, Object: "obj", Version: 9, Waited: 1500 * time.Millisecond},
		Error{Seq: 3, Code: ErrCodeNoSuchObject, Msg: "obj not found"},
	}
	for _, m := range msgs {
		t.Run(m.Kind().String(), func(t *testing.T) {
			assertEqual(t, roundTrip(t, m), m)
		})
	}
}

func TestRoundTripEmptyCollections(t *testing.T) {
	msgs := []Message{
		Invalidate{Seq: 1},
		AckInvalidate{Seq: 1, Volume: "v"},
		RenewObjLeases{Seq: 1, Volume: "v"},
		InvalRenew{Seq: 1, Volume: "v"},
		WriteReq{Seq: 1, Object: "o", Data: []byte{}},
		ObjLease{Seq: 1, Object: "o", Version: 1, Expire: time.Time{}}, // zero time
	}
	for _, m := range msgs {
		t.Run(m.Kind().String(), func(t *testing.T) {
			got := roundTrip(t, m)
			if got.Kind() != m.Kind() || got.Sequence() != m.Sequence() {
				t.Errorf("got %#v, want %#v", got, m)
			}
		})
	}
}

func TestZeroTimeRoundTrip(t *testing.T) {
	m := ObjLease{Seq: 1, Object: "o", Version: 1}
	got := roundTrip(t, m).(ObjLease)
	if !got.Expire.IsZero() {
		t.Errorf("zero time decoded as %v", got.Expire)
	}
}

func TestSequenceAccessors(t *testing.T) {
	if (Hello{}).Sequence() != 0 {
		t.Error("Hello sequence nonzero")
	}
	if (ReqObjLease{Seq: 5}).Sequence() != 5 {
		t.Error("ReqObjLease sequence wrong")
	}
}

func TestKindString(t *testing.T) {
	if KindObjLease.String() != "ObjLease" {
		t.Errorf("KindObjLease = %q", KindObjLease.String())
	}
	if Kind(200).String() != "kind(200)" {
		t.Errorf("unknown kind = %q", Kind(200).String())
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	if _, err := Decode([]byte{200}); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("err = %v, want ErrUnknownKind", err)
	}
	if _, err := Decode([]byte{byte(kindEnd)}); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("sentinel kind: %v", err)
	}
}

func TestDecodeTruncatedNeverPanics(t *testing.T) {
	// Every prefix of every valid encoding must decode to an error, not a
	// panic or a silent success.
	msgs := []Message{
		ObjLease{Seq: 42, Object: "obj/1", Version: 3, Expire: ts(100), HasData: true, Data: []byte("payload")},
		InvalRenew{Seq: 2, Volume: "vol", Invalidate: []core.ObjectID{"a"},
			Renew: []LeaseMeta{{Object: "b", Version: 2, Expire: ts(50)}}},
		RenewObjLeases{Seq: 2, Volume: "vol", Held: []core.HeldObject{{Object: "a", Version: 1}}},
		WriteReq{Seq: 7, Object: "obj", Data: []byte("xyz")},
	}
	for _, m := range msgs {
		buf, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 1; cut < len(buf); cut++ {
			if _, err := Decode(buf[:cut]); err == nil {
				t.Errorf("%s truncated to %d bytes decoded without error", m.Kind(), cut)
			}
		}
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	buf, _ := Encode(Hello{Client: "c"})
	buf = append(buf, 0xFF)
	if _, err := Decode(buf); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestDecodeRandomGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		_, _ = Decode(buf) // must not panic
	}
}

func TestQuickObjLeaseRoundTrip(t *testing.T) {
	f := func(seq uint64, obj string, ver int64, nanos int64, data []byte) bool {
		if nanos == 0 {
			nanos = 1
		}
		m := ObjLease{Seq: seq, Object: core.ObjectID(obj), Version: core.Version(ver),
			Expire: time.Unix(0, nanos), HasData: true, Data: data}
		buf, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		g := got.(ObjLease)
		return g.Seq == m.Seq && g.Object == m.Object && g.Version == m.Version &&
			g.Expire.Equal(m.Expire) && bytes.Equal(g.Data, m.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInvalidateRoundTrip(t *testing.T) {
	f := func(seq uint64, names []string) bool {
		m := Invalidate{Seq: seq}
		for _, n := range names {
			m.Objects = append(m.Objects, core.ObjectID(n))
		}
		buf, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		g := got.(Invalidate)
		if g.Seq != m.Seq || len(g.Objects) != len(m.Objects) {
			return false
		}
		for i := range g.Objects {
			if g.Objects[i] != m.Objects[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWriteReqRoundTrip(t *testing.T) {
	f := func(seq uint64, obj string, data []byte) bool {
		m := WriteReq{Seq: seq, Object: core.ObjectID(obj), Data: data}
		buf, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		g := got.(WriteReq)
		return g.Seq == m.Seq && g.Object == m.Object && bytes.Equal(g.Data, m.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 0xDEADBEEF12345678, SpanID: 42}
	msgs := []Message{
		WriteReq{Seq: 7, Object: "obj", Data: []byte("d"), Trace: tc},
		WriteReply{Seq: 7, Object: "obj", Version: 9, Waited: time.Millisecond, Trace: tc},
		Invalidate{Objects: []core.ObjectID{"a", "b"}, Trace: tc},
		AckInvalidate{Seq: 0, Volume: "v", Objects: []core.ObjectID{"a"}, Trace: tc},
		// SpanID-only contexts are legal (trace id picked up downstream).
		Invalidate{Objects: []core.ObjectID{"a"}, Trace: TraceContext{SpanID: 3}},
		WriteReq{Seq: 1, Object: "o", Data: []byte{}, Trace: TraceContext{TraceID: 1}},
	}
	for _, m := range msgs {
		t.Run(m.Kind().String(), func(t *testing.T) {
			assertEqual(t, roundTrip(t, m), m)
		})
	}
}

// TestTraceAbsentCompat pins the backward-compatibility contract: a zero
// trace context adds no bytes, so the encoding is identical to what a peer
// that predates tracing produces, and such old frames decode to a zero
// Trace field.
func TestTraceAbsentCompat(t *testing.T) {
	// Byte-for-byte: the traced struct with a zero context encodes exactly
	// like the pre-trace wire format (reconstructed by hand here).
	var e encoder
	e.u8(uint8(KindWriteReq))
	e.u64(7)
	e.str("obj")
	e.bytes([]byte("data"))
	oldFrame := e.buf

	newFrame, err := Encode(WriteReq{Seq: 7, Object: "obj", Data: []byte("data")})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oldFrame, newFrame) {
		t.Fatalf("zero-trace encoding diverged from old format:\n old %x\n new %x", oldFrame, newFrame)
	}

	// And the old frame decodes with a zero Trace.
	m, err := Decode(oldFrame)
	if err != nil {
		t.Fatalf("old frame rejected: %v", err)
	}
	if got := m.(WriteReq).Trace; !got.IsZero() {
		t.Errorf("old frame decoded with trace %+v", got)
	}

	// Same for a push-style Invalidate, whose Objects list is the last base
	// field before the optional trace.
	var e2 encoder
	e2.u8(uint8(KindInvalidate))
	e2.u64(0)
	e2.objects([]core.ObjectID{"x", "y"})
	m2, err := Decode(e2.buf)
	if err != nil {
		t.Fatalf("old Invalidate rejected: %v", err)
	}
	inv := m2.(Invalidate)
	if !inv.Trace.IsZero() || len(inv.Objects) != 2 {
		t.Errorf("old Invalidate decoded as %+v", inv)
	}
}

// TestTraceNonCanonicalRejected: an explicitly-present all-zero trace
// section does not survive a re-encode (it would encode as absent), so the
// decoder rejects it to keep accepted messages canonical.
func TestTraceNonCanonicalRejected(t *testing.T) {
	buf, err := Encode(WriteReq{Seq: 1, Object: "o", Data: []byte("d")})
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, 0, 0) // TraceID=0, SpanID=0, explicitly present
	if _, err := Decode(buf); err == nil {
		t.Error("present-but-zero trace context accepted")
	}
}

// TestTraceTruncatedRejected: cutting inside the trace section must error.
// Cutting exactly at the base/trace boundary is legal by design — it is an
// old-format frame — so those cuts are skipped.
func TestTraceTruncatedRejected(t *testing.T) {
	base, err := Encode(WriteReq{Seq: 9, Object: "obj", Data: []byte("d")})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Encode(WriteReq{Seq: 9, Object: "obj", Data: []byte("d"),
		Trace: TraceContext{TraceID: 1 << 40, SpanID: 1 << 40}})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced) <= len(base) {
		t.Fatalf("trace added no bytes: base %d traced %d", len(base), len(traced))
	}
	for cut := len(base) + 1; cut < len(traced); cut++ {
		if _, err := Decode(traced[:cut]); err == nil {
			t.Errorf("frame cut mid-trace at %d accepted", cut)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		Hello{Client: "c"},
		ReqVolLease{Seq: 1, Volume: "v", Epoch: 0},
		WriteReq{Seq: 2, Object: "o", Data: []byte("hello")},
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		assertEqual(t, got, want)
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("draining read = %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsHugeLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, 1, 2}) // claims 10 bytes, has 2
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestEncodeRejectsUnknownType(t *testing.T) {
	if _, err := Encode(fakeMsg{}); err == nil {
		t.Error("unknown message type encoded")
	}
}

type fakeMsg struct{}

func (fakeMsg) Kind() Kind       { return Kind(99) }
func (fakeMsg) Sequence() uint64 { return 0 }
