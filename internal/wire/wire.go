// Package wire defines the volume-lease protocol's message vocabulary
// (Figures 3 and 4 of the paper) and a compact, dependency-free binary
// encoding with length-prefixed framing.
//
// # Conversations
//
// Requests initiated by a client carry a nonzero Seq; every server message
// belonging to that conversation echoes it, so a client can multiplex RPCs
// with server-initiated pushes (which use Seq 0) on one connection. The
// conversations are:
//
//	object lease:   ReqObjLease ─▶ ObjLease
//	volume lease:   ReqVolLease ─▶ VolLease                                 (clean client)
//	                ReqVolLease ─▶ InvalRenew ─▶ AckInvalidate ─▶ VolLease  (inactive client)
//	                ReqVolLease ─▶ MustRenewAll ─▶ RenewObjLeases ─▶
//	                    InvalRenew ─▶ AckInvalidate ─▶ VolLease             (unreachable client)
//	write:          WriteReq ─▶ WriteReply
//	invalidation:   Invalidate ─▶ AckInvalidate                             (server push, Seq 0)
package wire

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds. The numeric values are part of the wire format.
const (
	KindHello Kind = iota + 1
	KindReqObjLease
	KindObjLease
	KindReqVolLease
	KindVolLease
	KindInvalidate
	KindAckInvalidate
	KindMustRenewAll
	KindRenewObjLeases
	KindInvalRenew
	KindWriteReq
	KindWriteReply
	KindError
	kindEnd // sentinel
)

// NumKinds bounds the valid Kind values (exclusive upper bound); exporters
// use it to size per-kind lookup tables.
const NumKinds = int(kindEnd)

var kindNames = [...]string{
	KindHello:          "Hello",
	KindReqObjLease:    "ReqObjLease",
	KindObjLease:       "ObjLease",
	KindReqVolLease:    "ReqVolLease",
	KindVolLease:       "VolLease",
	KindInvalidate:     "Invalidate",
	KindAckInvalidate:  "AckInvalidate",
	KindMustRenewAll:   "MustRenewAll",
	KindRenewObjLeases: "RenewObjLeases",
	KindInvalRenew:     "InvalRenew",
	KindWriteReq:       "WriteReq",
	KindWriteReply:     "WriteReply",
	KindError:          "Error",
}

// String names the kind.
func (k Kind) String() string {
	if k > 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// TraceContext identifies the causal trace a message belongs to. TraceID
// names the end-to-end operation (one client write and everything it
// triggers); SpanID names the sender's span, which receivers use as the
// parent of any spans they open. The zero TraceContext means "untraced" and
// is encoded as an absent field, so peers that predate tracing interoperate:
// their frames simply decode with a zero TraceContext.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// IsZero reports whether the context carries no trace.
func (t TraceContext) IsZero() bool { return t.TraceID == 0 && t.SpanID == 0 }

// Message is any protocol message.
type Message interface {
	// Kind identifies the concrete type.
	Kind() Kind
	// Sequence returns the conversation id (0 for pushes and Hello).
	Sequence() uint64
}

// Hello introduces a client connection; it must be the first message a
// client sends.
type Hello struct {
	Client core.ClientID
}

// Kind implements Message.
func (Hello) Kind() Kind { return KindHello }

// Sequence implements Message.
func (Hello) Sequence() uint64 { return 0 }

// ReqObjLease is the client's REQ_OBJ_LEASE: request (or renew) a lease on
// Object, reporting the cached Version (core.NoVersion if none) so the
// server can piggyback data only when needed.
type ReqObjLease struct {
	Seq     uint64
	Object  core.ObjectID
	Version core.Version
}

// Kind implements Message.
func (ReqObjLease) Kind() Kind { return KindReqObjLease }

// Sequence implements Message.
func (m ReqObjLease) Sequence() uint64 { return m.Seq }

// ObjLease is the server's OBJ_LEASE grant. Data is non-nil iff the
// client's reported version was stale.
type ObjLease struct {
	Seq     uint64
	Object  core.ObjectID
	Version core.Version
	Expire  time.Time
	Data    []byte
	HasData bool
}

// Kind implements Message.
func (ObjLease) Kind() Kind { return KindObjLease }

// Sequence implements Message.
func (m ObjLease) Sequence() uint64 { return m.Seq }

// ReqVolLease is the client's REQ_VOL_LEASE, carrying the last epoch it
// knows (core.NoEpoch on first contact).
type ReqVolLease struct {
	Seq    uint64
	Volume core.VolumeID
	Epoch  core.Epoch
}

// Kind implements Message.
func (ReqVolLease) Kind() Kind { return KindReqVolLease }

// Sequence implements Message.
func (m ReqVolLease) Sequence() uint64 { return m.Seq }

// VolLease is the server's VOL_LEASE grant.
type VolLease struct {
	Seq    uint64
	Volume core.VolumeID
	Expire time.Time
	Epoch  core.Epoch
}

// Kind implements Message.
func (VolLease) Kind() Kind { return KindVolLease }

// Sequence implements Message.
func (m VolLease) Sequence() uint64 { return m.Seq }

// Invalidate is the server's INVALIDATE push (Seq 0 when initiated by a
// write). Trace, when set, links the push to the write that caused it.
type Invalidate struct {
	Seq     uint64
	Objects []core.ObjectID
	Trace   TraceContext
}

// Kind implements Message.
func (Invalidate) Kind() Kind { return KindInvalidate }

// Sequence implements Message.
func (m Invalidate) Sequence() uint64 { return m.Seq }

// AckInvalidate is the client's ACK_INVALIDATE, echoing the invalidated
// objects (and conversation Seq when part of a volume renewal). Trace
// echoes the Invalidate's context so the ack joins the write's trace.
type AckInvalidate struct {
	Seq     uint64
	Volume  core.VolumeID
	Objects []core.ObjectID
	Trace   TraceContext
}

// Kind implements Message.
func (AckInvalidate) Kind() Kind { return KindAckInvalidate }

// Sequence implements Message.
func (m AckInvalidate) Sequence() uint64 { return m.Seq }

// MustRenewAll is the server's demand that a returning client enumerate its
// cached objects (reconnection protocol).
type MustRenewAll struct {
	Seq    uint64
	Volume core.VolumeID
	Epoch  core.Epoch
}

// Kind implements Message.
func (MustRenewAll) Kind() Kind { return KindMustRenewAll }

// Sequence implements Message.
func (m MustRenewAll) Sequence() uint64 { return m.Seq }

// RenewObjLeases is the client's RENEW_OBJ_LEASES: every object it caches
// from the volume, with versions.
type RenewObjLeases struct {
	Seq    uint64
	Volume core.VolumeID
	Held   []core.HeldObject
}

// Kind implements Message.
func (RenewObjLeases) Kind() Kind { return KindRenewObjLeases }

// Sequence implements Message.
func (m RenewObjLeases) Sequence() uint64 { return m.Seq }

// LeaseMeta is one renewed lease in an InvalRenew vector.
type LeaseMeta struct {
	Object  core.ObjectID
	Version core.Version
	Expire  time.Time
}

// InvalRenew is the server's combined INVALIDATE+RENEW vector: stale
// objects to drop and fresh leases on current ones. It must be acknowledged
// before the volume lease is granted.
type InvalRenew struct {
	Seq        uint64
	Volume     core.VolumeID
	Invalidate []core.ObjectID
	Renew      []LeaseMeta
}

// Kind implements Message.
func (InvalRenew) Kind() Kind { return KindInvalRenew }

// Sequence implements Message.
func (m InvalRenew) Sequence() uint64 { return m.Seq }

// WriteReq asks the server to modify an object (used by origin/publisher
// clients and tools). Trace, when set, makes the server's write span a
// child of the client's.
type WriteReq struct {
	Seq    uint64
	Object core.ObjectID
	Data   []byte
	Trace  TraceContext
}

// Kind implements Message.
func (WriteReq) Kind() Kind { return KindWriteReq }

// Sequence implements Message.
func (m WriteReq) Sequence() uint64 { return m.Seq }

// WriteReply reports a completed write: the new version and how long the
// server waited for invalidation acknowledgments. Trace echoes the
// request's context.
type WriteReply struct {
	Seq     uint64
	Object  core.ObjectID
	Version core.Version
	Waited  time.Duration
	Trace   TraceContext
}

// Kind implements Message.
func (WriteReply) Kind() Kind { return KindWriteReply }

// Sequence implements Message.
func (m WriteReply) Sequence() uint64 { return m.Seq }

// ErrorCode classifies protocol errors.
type ErrorCode uint8

// Error codes.
const (
	ErrCodeUnknown ErrorCode = iota
	ErrCodeNoSuchObject
	ErrCodeNoSuchVolume
	ErrCodeWriteFenced
	ErrCodeBadRequest
)

// Error reports a failed request.
type Error struct {
	Seq  uint64
	Code ErrorCode
	Msg  string
}

// Kind implements Message.
func (Error) Kind() Kind { return KindError }

// Sequence implements Message.
func (m Error) Sequence() uint64 { return m.Seq }

// Compile-time interface checks.
var (
	_ Message = Hello{}
	_ Message = ReqObjLease{}
	_ Message = ObjLease{}
	_ Message = ReqVolLease{}
	_ Message = VolLease{}
	_ Message = Invalidate{}
	_ Message = AckInvalidate{}
	_ Message = MustRenewAll{}
	_ Message = RenewObjLeases{}
	_ Message = InvalRenew{}
	_ Message = WriteReq{}
	_ Message = WriteReply{}
	_ Message = Error{}
)
