package state

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// DefaultExpiringWindow is the lookahead the lease_state_expiring gauge
// uses when the caller passes 0.
const DefaultExpiringWindow = 30 * time.Second

// Register exports the node's lease-state gauges. Each scrape takes one
// fresh snapshot and aggregates it, so the series are exactly as current
// as the tables; window bounds the lease_state_expiring lookahead. No-op
// when reg or src is nil (introspection off).
func Register(reg *obs.Registry, node string, src *Source, window time.Duration) {
	if reg == nil || src == nil {
		return
	}
	if window <= 0 {
		window = DefaultExpiringWindow
	}
	count := func(pick func(Counts) int) func() float64 {
		return func() float64 { return float64(pick(Count(src.Snapshot(), window))) }
	}
	reg.GaugeFunc(fmt.Sprintf("lease_state_object_leases{node=%q}", node),
		count(func(c Counts) int { return c.ObjectLeases }))
	reg.GaugeFunc(fmt.Sprintf("lease_state_volume_leases{node=%q}", node),
		count(func(c Counts) int { return c.VolumeLeases }))
	reg.GaugeFunc(fmt.Sprintf("lease_state_expiring{node=%q}", node),
		count(func(c Counts) int { return c.Expiring }))
	reg.GaugeFunc(fmt.Sprintf("lease_state_unreachable{node=%q}", node),
		count(func(c Counts) int { return c.Unreachable }))
	reg.GaugeFunc(fmt.Sprintf("lease_state_unreachable_cached{node=%q}", node),
		count(func(c Counts) int { return c.UnreachableCached }))
}
