package state

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
)

// Filter restricts a Dump to a subset of its state. Zero value keeps
// everything.
type Filter struct {
	// Volume keeps only the named volumes (and client leases on them).
	Volume []core.VolumeID
	// Client keeps only lease records held by the named clients.
	Client []core.ClientID
	// Expiring keeps only leases expiring within this window after the
	// dump's TakenAt (0 = no expiry filter).
	Expiring time.Duration
}

func (f Filter) empty() bool {
	return len(f.Volume) == 0 && len(f.Client) == 0 && f.Expiring == 0
}

// Apply returns a filtered copy of the dump. The filter is evaluated
// against the dump's own TakenAt timestamps — no clock is read — so it
// works identically on live and simulated-clock dumps.
func (f Filter) Apply(d Dump) Dump {
	if f.empty() {
		return d
	}
	vols := toSet(f.Volume)
	clients := toSet(f.Client)

	if d.Server != nil {
		s := *d.Server
		edge := time.Time{}
		if f.Expiring > 0 {
			edge = s.TakenAt.Add(f.Expiring)
		}
		keepLease := func(l core.LeaseSnapshot) bool {
			if clients != nil && !clients[string(l.Client)] {
				return false
			}
			return edge.IsZero() || l.Expire.Before(edge)
		}
		out := make([]VolumeState, 0, len(s.Volumes))
		for _, vs := range s.Volumes {
			if vols != nil && !vols[string(vs.Volume)] {
				continue
			}
			kept := vs
			kept.VolumeLeases = filterLeases(vs.VolumeLeases, keepLease)
			kept.Objects = make([]core.ObjectSnapshot, 0, len(vs.Objects))
			for _, o := range vs.Objects {
				o.Holders = filterLeases(o.Holders, keepLease)
				// Under a lease-level filter, objects with no matching
				// holders are noise; keep them only in the unfiltered view.
				if len(o.Holders) > 0 || (clients == nil && f.Expiring == 0) {
					kept.Objects = append(kept.Objects, o)
				}
			}
			if clients != nil {
				kept.Unreachable = filterIDs(vs.Unreachable, clients)
				kept.Inactive = nil
				for _, ia := range vs.Inactive {
					if clients[string(ia.Client)] {
						kept.Inactive = append(kept.Inactive, ia)
					}
				}
				kept.PendingAcks = nil
				for _, pa := range vs.PendingAcks {
					if clients[string(pa.Client)] {
						kept.PendingAcks = append(kept.PendingAcks, pa)
					}
				}
			}
			out = append(out, kept)
		}
		s.Volumes = out
		d.Server = &s
	}

	if len(d.Clients) > 0 {
		out := make([]ClientSnapshot, 0, len(d.Clients))
		for _, cs := range d.Clients {
			if clients != nil && !clients[string(cs.Client)] {
				continue
			}
			edge := time.Time{}
			if f.Expiring > 0 {
				edge = cs.TakenAt.Add(f.Expiring)
			}
			if vols != nil || !edge.IsZero() {
				kv := make([]ClientVolumeLease, 0, len(cs.Volumes))
				for _, vl := range cs.Volumes {
					if vols != nil && !vols[string(vl.Volume)] {
						continue
					}
					if !edge.IsZero() && !vl.Expire.Before(edge) {
						continue
					}
					kv = append(kv, vl)
				}
				cs.Volumes = kv
				ko := make([]ClientObjectLease, 0, len(cs.Objects))
				for _, ol := range cs.Objects {
					if vols != nil && !vols[string(ol.Volume)] {
						continue
					}
					if !edge.IsZero() && !ol.Expire.Before(edge) {
						continue
					}
					ko = append(ko, ol)
				}
				cs.Objects = ko
			}
			out = append(out, cs)
		}
		d.Clients = out
	}
	return d
}

// Handler serves the source's dump at /debug/leases as indented JSON.
// Query filters: ?volume= and ?client= (both repeatable) restrict to the
// named volumes/clients; ?expiring=30s keeps only leases expiring within
// that window after the snapshot's TakenAt. Safe with a nil *Source
// (serves the empty dump).
func Handler(src *Source) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var f Filter
		for _, v := range q["volume"] {
			f.Volume = append(f.Volume, core.VolumeID(v))
		}
		for _, c := range q["client"] {
			f.Client = append(f.Client, core.ClientID(c))
		}
		if s := q.Get("expiring"); s != "" {
			win, err := time.ParseDuration(s)
			if err != nil || win <= 0 {
				http.Error(w, fmt.Sprintf("bad expiring window %q (want a positive duration like 30s)", s), http.StatusBadRequest)
				return
			}
			f.Expiring = win
		}
		d := f.Apply(src.Snapshot())
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(d)
	}
}

func toSet[T ~string](ids []T) map[string]bool {
	if len(ids) == 0 {
		return nil
	}
	m := make(map[string]bool, len(ids))
	for _, id := range ids {
		m[string(id)] = true
	}
	return m
}

func filterLeases(ls []core.LeaseSnapshot, keep func(core.LeaseSnapshot) bool) []core.LeaseSnapshot {
	out := make([]core.LeaseSnapshot, 0, len(ls))
	for _, l := range ls {
		if keep(l) {
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func filterIDs(ids []core.ClientID, want map[string]bool) []core.ClientID {
	out := make([]core.ClientID, 0, len(ids))
	for _, id := range ids {
		if want[string(id)] {
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
