package state

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

var base = time.Unix(10000, 0)

// fixture builds a server dump with one volume "v" (epoch 3), objects
// o1/o2, clients c1 (holds o1+vol) and c2 (holds o2+vol), and a matching
// pair of client snapshots.
func fixture() (Dump, []Dump) {
	objExp := base.Add(time.Hour)
	volExp := base.Add(10 * time.Second)
	server := Dump{
		Role: RoleServer, Node: "srv", TakenAt: base,
		Server: &ServerSnapshot{
			TakenAt:   base,
			Connected: []core.ClientID{"c1", "c2"},
			Volumes: []VolumeState{{
				VolumeSnapshot: core.VolumeSnapshot{
					Volume: "v", Epoch: 3, TakenAt: base,
					VolumeLeases: []core.LeaseSnapshot{
						{Client: "c1", Granted: base, Expire: volExp},
						{Client: "c2", Granted: base, Expire: volExp},
					},
					Objects: []core.ObjectSnapshot{
						{Object: "o1", Version: 7, Holders: []core.LeaseSnapshot{{Client: "c1", Granted: base, Expire: objExp}}},
						{Object: "o2", Version: 2, Holders: []core.LeaseSnapshot{{Client: "c2", Granted: base, Expire: objExp}}},
					},
				},
			}},
		},
	}
	mkClient := func(id core.ClientID, oid core.ObjectID, ver core.Version) Dump {
		return Dump{
			Role: RoleClient, Node: string(id), TakenAt: base,
			Clients: []ClientSnapshot{{
				Client: id, Server: "srv", TakenAt: base, Skew: 50 * time.Millisecond,
				Volumes: []ClientVolumeLease{{Volume: "v", Epoch: 3, Expire: volExp}},
				Objects: []ClientObjectLease{{Object: oid, Volume: "v", Version: ver, Expire: objExp, HasData: true}},
			}},
		}
	}
	return server, []Dump{mkClient("c1", "o1", 7), mkClient("c2", "o2", 2)}
}

func TestDiffCleanOnAgreement(t *testing.T) {
	server, clients := fixture()
	r := Diff(server, clients, Options{})
	if !r.Clean() {
		t.Fatalf("expected clean diff, got %+v", r.Divergences)
	}
	if r.ClientsChecked != 2 || r.LeasesChecked != 4 {
		t.Fatalf("checked %d clients / %d leases, want 2 / 4", r.ClientsChecked, r.LeasesChecked)
	}
}

func TestDiffClassifiesAllFourKinds(t *testing.T) {
	server, clients := fixture()
	srv := server.Server

	// holder-mismatch: c1 claims o1 but the server record is gone.
	srv.Volumes[0].Objects[0].Holders = nil
	// expiry-skew: c2's volume-lease expiry drifts 2s from the server's.
	clients[1].Clients[0].Volumes[0].Expire = srv.Volumes[0].VolumeLeases[1].Expire.Add(2 * time.Second)
	// ack-overdue: a pending ack 5s past its deadline.
	srv.Volumes[0].PendingAcks = []PendingAck{{Client: "c9", Object: "o2", Deadline: base.Add(-5 * time.Second)}}

	r := Diff(server, clients, Options{})
	kinds := map[string]int{}
	for _, d := range r.Divergences {
		kinds[d.Kind]++
	}
	if kinds[KindHolderMismatch] != 1 || kinds[KindExpirySkew] != 1 || kinds[KindAckOverdue] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}

	// unreachable-caching: server declares c1 unreachable while c1 still
	// trusts its leases.
	server2, clients2 := fixture()
	server2.Server.Volumes[0].Unreachable = []core.ClientID{"c1"}
	// The protocol's effective view scrubs unreachable holders.
	server2.Server.Volumes[0].VolumeLeases = server2.Server.Volumes[0].VolumeLeases[1:]
	server2.Server.Volumes[0].Objects[0].Holders = nil
	r2 := Diff(server2, clients2, Options{})
	n := 0
	for _, d := range r2.Divergences {
		if d.Kind != KindUnreachableCaching {
			t.Fatalf("unexpected kind %s: %+v", d.Kind, d)
		}
		if d.Client != "c1" {
			t.Fatalf("wrong client: %+v", d)
		}
		n++
	}
	if n != 2 { // volume lease + object lease
		t.Fatalf("got %d unreachable-caching divergences, want 2", n)
	}
}

func TestDiffIgnoresExpiredClaims(t *testing.T) {
	server, clients := fixture()
	// Client's own clock is already past every expiry: it claims nothing,
	// so even an empty server table diffs clean.
	clients[0].Clients[0].TakenAt = base.Add(2 * time.Hour)
	clients[1].Clients[0].TakenAt = base.Add(2 * time.Hour)
	server.Server.Volumes[0].VolumeLeases = nil
	server.Server.Volumes[0].Objects[0].Holders = nil
	server.Server.Volumes[0].Objects[1].Holders = nil
	if r := Diff(server, clients, Options{}); !r.Clean() {
		t.Fatalf("expired claims should not diverge: %+v", r.Divergences)
	}
}

func TestDiffEpsilonTolerance(t *testing.T) {
	server, clients := fixture()
	clients[0].Clients[0].Objects[0].Expire = clients[0].Clients[0].Objects[0].Expire.Add(700 * time.Millisecond)
	if r := Diff(server, clients, Options{}); r.Clean() {
		t.Fatal("700ms skew over default ε should diverge")
	}
	if r := Diff(server, clients, Options{Epsilon: time.Second}); !r.Clean() {
		t.Fatalf("700ms skew under ε=1s should be tolerated: %+v", r.Divergences)
	}
}

func TestCount(t *testing.T) {
	server, clients := fixture()
	c := Count(server, 30*time.Second)
	if c.ObjectLeases != 2 || c.VolumeLeases != 2 {
		t.Fatalf("server counts: %+v", c)
	}
	if c.Expiring != 2 { // the two 10s volume leases, not the 1h object leases
		t.Fatalf("expiring = %d, want 2", c.Expiring)
	}
	cc := Count(clients[0], 30*time.Second)
	if cc.ObjectLeases != 1 || cc.VolumeLeases != 1 || cc.Expiring != 1 {
		t.Fatalf("client counts: %+v", cc)
	}

	// Unreachable with a live ack deadline counts as possibly-caching.
	server.Server.Volumes[0].Unreachable = []core.ClientID{"c3", "c4"}
	server.Server.Volumes[0].PendingAcks = []PendingAck{{Client: "c3", Object: "o1", Deadline: base.Add(time.Minute)}}
	c = Count(server, 30*time.Second)
	if c.Unreachable != 2 || c.UnreachableCached != 1 {
		t.Fatalf("unreachable counts: %+v", c)
	}
}

func TestFilterAndHandler(t *testing.T) {
	server, _ := fixture()
	src := NewSource(func() Dump { return server })

	// ?client=c1 keeps only c1's records.
	req := httptest.NewRequest("GET", "/debug/leases?client=c1", nil)
	rw := httptest.NewRecorder()
	Handler(src)(rw, req)
	if rw.Code != 200 {
		t.Fatalf("status %d: %s", rw.Code, rw.Body)
	}
	var got Dump
	if err := json.Unmarshal(rw.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	vs := got.Server.Volumes[0]
	if len(vs.VolumeLeases) != 1 || vs.VolumeLeases[0].Client != "c1" {
		t.Fatalf("volume leases: %+v", vs.VolumeLeases)
	}
	if len(vs.Objects) != 1 || vs.Objects[0].Object != "o1" {
		t.Fatalf("objects: %+v", vs.Objects)
	}

	// ?expiring=30s keeps only the short volume leases.
	d := Filter{Expiring: 30 * time.Second}.Apply(server)
	vs = d.Server.Volumes[0]
	if len(vs.VolumeLeases) != 2 || len(vs.Objects) != 0 {
		t.Fatalf("expiring filter: %d volume leases, %d objects", len(vs.VolumeLeases), len(vs.Objects))
	}

	// ?volume= with an unknown name empties the dump.
	d = Filter{Volume: []core.VolumeID{"nope"}}.Apply(server)
	if len(d.Server.Volumes) != 0 {
		t.Fatalf("unknown volume kept: %+v", d.Server.Volumes)
	}

	// Bad window is a 400.
	req = httptest.NewRequest("GET", "/debug/leases?expiring=bogus", nil)
	rw = httptest.NewRecorder()
	Handler(src)(rw, req)
	if rw.Code != 400 {
		t.Fatalf("status %d, want 400", rw.Code)
	}

	// Nil source serves the empty dump.
	req = httptest.NewRequest("GET", "/debug/leases", nil)
	rw = httptest.NewRecorder()
	Handler(nil)(rw, req)
	if rw.Code != 200 {
		t.Fatalf("nil source status %d", rw.Code)
	}
}

func TestRegisterGauges(t *testing.T) {
	server, _ := fixture()
	reg := obs.NewRegistry()
	Register(reg, "srv", NewSource(func() Dump { return server }), 30*time.Second)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`lease_state_object_leases{node="srv"} 2`,
		`lease_state_volume_leases{node="srv"} 2`,
		`lease_state_expiring{node="srv"} 2`,
		`lease_state_unreachable{node="srv"} 0`,
		`lease_state_unreachable_cached{node="srv"} 0`,
	} {
		if !strings.Contains(buf.String(), line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, buf.String())
		}
	}
}

func TestDumpJSONRoundTrip(t *testing.T) {
	server, clients := fixture()
	server.Clients = clients[0].Clients
	b, err := json.Marshal(server)
	if err != nil {
		t.Fatal(err)
	}
	var got Dump
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !got.TakenAt.Equal(server.TakenAt) || got.Node != "srv" ||
		len(got.Server.Volumes) != 1 || len(got.Clients) != 1 {
		t.Fatalf("round trip mangled the dump: %+v", got)
	}
	if got.Clients[0].Skew != 50*time.Millisecond {
		t.Fatalf("skew lost: %v", got.Clients[0].Skew)
	}
}

// BenchmarkStateDisabled gates the disabled path: with introspection off
// (nil *Source) a snapshot costs zero allocations. Wired into the
// bench-disabled Make target alongside Emit/Span/Flight/Cost.
func BenchmarkStateDisabled(b *testing.B) {
	var src *Source
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := src.Snapshot()
		if d.Server != nil {
			b.Fatal("non-empty dump from nil source")
		}
	}
}
