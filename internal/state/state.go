// Package state is the lease-table introspection layer: point-in-time
// snapshots of what a server's sharded lease tables contain and of what a
// client believes it holds, plus a diff engine that classifies divergences
// between the two views.
//
// Every other observability surface in this repo (obs events, the audit
// shadow model, health anomalies, cost tables) is flow-based — it watches
// messages move. This package answers the complementary state question:
// "show me the lease table" and "show me what this client thinks it
// caches", and mechanically checks that the two agree within the protocol's
// ε bound. Snapshots are taken on the injected clock by the owning
// component (server, client pool, proxy); this package itself never reads a
// clock — every filter and gauge is computed relative to the snapshot's own
// TakenAt, so a dump taken on a simulated clock diffs exactly like a live
// one.
//
// Consistency model: a server snapshot is per-shard atomic (each volume's
// state is copied under its shard mutex) but not cross-shard atomic — see
// DESIGN.md §12. The disabled path is nil-safe and allocation-free: a nil
// *Source yields an empty Dump (gated by BenchmarkStateDisabled).
package state

import (
	"time"

	"repro/internal/core"
)

// Roles a Dump can describe.
const (
	RoleServer = "server"
	RoleClient = "client"
	RoleProxy  = "proxy"
)

// PendingAck is one outstanding write-invalidation acknowledgment: the
// server (or proxy) has sent Invalidate to Client for Object and is still
// waiting. Deadline is the lease bound after which the server stops
// waiting and declares the client unreachable; zero when the component
// does not track per-ack deadlines.
type PendingAck struct {
	Client   core.ClientID `json:"client"`
	Object   core.ObjectID `json:"object"`
	Deadline time.Time     `json:"deadline,omitempty"`
}

// VolumeState is one volume's consistency state as the server sees it:
// the table snapshot plus the write-path ack state attached to the same
// shard (copied under the same shard mutex, so the pair is atomic).
type VolumeState struct {
	core.VolumeSnapshot
	PendingAcks []PendingAck `json:"pending_acks,omitempty"`
}

// ServerSnapshot is the authoritative half of a Dump: every volume's lease
// table plus the connection set.
type ServerSnapshot struct {
	TakenAt   time.Time       `json:"taken_at"`
	Connected []core.ClientID `json:"connected,omitempty"`
	Volumes   []VolumeState   `json:"volumes,omitempty"`
}

// ClientVolumeLease is one volume lease as cached by a client.
type ClientVolumeLease struct {
	Volume core.VolumeID `json:"volume"`
	Epoch  core.Epoch    `json:"epoch"`
	Expire time.Time     `json:"expire"`
}

// ClientObjectLease is one object lease as cached by a client.
type ClientObjectLease struct {
	Object  core.ObjectID `json:"object"`
	Volume  core.VolumeID `json:"volume"`
	Version core.Version  `json:"version"`
	Expire  time.Time     `json:"expire"`
	HasData bool          `json:"has_data"`
}

// ClientSnapshot is what one client believes it holds at TakenAt on its
// own clock. Skew is the client's configured ε: it treats a lease as
// usable only while expire − ε is still in the future.
type ClientSnapshot struct {
	Client  core.ClientID       `json:"client"`
	Server  string              `json:"server,omitempty"`
	TakenAt time.Time           `json:"taken_at"`
	Skew    time.Duration       `json:"skew_ns"`
	Volumes []ClientVolumeLease `json:"volumes,omitempty"`
	Objects []ClientObjectLease `json:"objects,omitempty"`
}

// Dump is one node's complete lease-state view: the Server section for
// servers and proxies (a proxy is a server to its downstream), the Clients
// section for client pools and for a proxy's upstream-facing cache.
type Dump struct {
	Role    string           `json:"role"`
	Node    string           `json:"node"`
	TakenAt time.Time        `json:"taken_at"`
	Server  *ServerSnapshot  `json:"server,omitempty"`
	Clients []ClientSnapshot `json:"clients,omitempty"`
}

// Source is a nil-safe handle to a component's snapshot function, mirroring
// the disabled-path convention of obs/cost/health: a nil *Source (state
// introspection off) costs one pointer compare and zero allocations.
type Source struct {
	fn func() Dump
}

// NewSource wraps a snapshot function.
func NewSource(fn func() Dump) *Source {
	if fn == nil {
		return nil
	}
	return &Source{fn: fn}
}

// Snapshot takes a point-in-time dump; on a nil Source it returns an empty
// Dump.
func (s *Source) Snapshot() Dump {
	if s == nil || s.fn == nil {
		return Dump{}
	}
	return s.fn()
}

// Counts are the gauge-ready aggregates of one Dump, every one computed
// relative to the dump's own TakenAt (no clock in this package).
type Counts struct {
	// ObjectLeases and VolumeLeases count valid leases: server-side
	// holder records, or client-side cached leases the client still
	// considers usable.
	ObjectLeases int
	VolumeLeases int
	// Expiring counts leases (object + volume) expiring within the window
	// after TakenAt.
	Expiring int
	// Unreachable counts (volume, client) entries in Unreachable sets.
	Unreachable int
	// UnreachableCached estimates how many unreachable clients may still
	// be caching data: unreachable entries whose client could hold an
	// unexpired object lease (its last-known object-lease expiry, if the
	// server ever granted one, has not provably passed). The server drops
	// its own records when a client goes unreachable, so this is counted
	// from the pending-ack trail: an unreachable client with an ack
	// deadline still in the future at TakenAt provably had a live lease.
	UnreachableCached int
}

// Count aggregates a Dump into Counts, treating leases expiring within
// window after the snapshot's TakenAt as "expiring".
func Count(d Dump, window time.Duration) Counts {
	var c Counts
	if d.Server != nil {
		edge := d.Server.TakenAt.Add(window)
		overdue := make(map[core.ClientID]bool)
		for _, vs := range d.Server.Volumes {
			for _, pa := range vs.PendingAcks {
				if !pa.Deadline.IsZero() && pa.Deadline.After(d.Server.TakenAt) {
					overdue[pa.Client] = true
				}
			}
		}
		for _, vs := range d.Server.Volumes {
			c.VolumeLeases += len(vs.VolumeLeases)
			for _, l := range vs.VolumeLeases {
				if l.Expire.Before(edge) {
					c.Expiring++
				}
			}
			for _, o := range vs.Objects {
				c.ObjectLeases += len(o.Holders)
				for _, l := range o.Holders {
					if l.Expire.Before(edge) {
						c.Expiring++
					}
				}
			}
			c.Unreachable += len(vs.Unreachable)
			for _, u := range vs.Unreachable {
				if overdue[u] {
					c.UnreachableCached++
				}
			}
		}
	}
	for _, cs := range d.Clients {
		edge := cs.TakenAt.Add(window)
		for _, vl := range cs.Volumes {
			if vl.Expire.Add(-cs.Skew).After(cs.TakenAt) {
				c.VolumeLeases++
				if vl.Expire.Before(edge) {
					c.Expiring++
				}
			}
		}
		for _, ol := range cs.Objects {
			if ol.Expire.Add(-cs.Skew).After(cs.TakenAt) {
				c.ObjectLeases++
				if ol.Expire.Before(edge) {
					c.Expiring++
				}
			}
		}
	}
	return c
}
