package state

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
)

// Divergence kinds. The diff engine classifies exactly four ways a server
// and a client view of lease state can disagree.
const (
	// KindHolderMismatch: the client believes it can read an object (both
	// its object and volume leases are fresh by its own ε-discounted
	// clock) but the server holds no matching valid lease record — or
	// holds a different version or epoch. This is the unsafe direction: a
	// write at the server would not notify this client. The benign
	// converse (server still lists a holder the client already dropped)
	// is not a divergence; the server's record simply expires.
	KindHolderMismatch = "holder-mismatch"
	// KindExpirySkew: both sides hold the lease but their expiry
	// timestamps differ by more than the ε bound. Expiries travel inside
	// grant messages, so any skew beyond ε means a codec, renewal, or
	// clock-injection bug.
	KindExpirySkew = "expiry-skew"
	// KindUnreachableCaching: the server has declared the client
	// unreachable for a volume (it provably missed an invalidation) yet
	// the client still claims usable leases there. Safe only until the
	// client's leases expire; flagged so the window is visible.
	KindUnreachableCaching = "unreachable-caching"
	// KindAckOverdue: a write-invalidation ack is still outstanding past
	// its lease-expiry deadline. The write path should have declared the
	// client unreachable and moved on; a stuck entry means a leaked ack
	// record or a wedged write.
	KindAckOverdue = "ack-overdue"
)

// Divergence is one classified disagreement.
type Divergence struct {
	Kind   string        `json:"kind"`
	Client core.ClientID `json:"client"`
	Volume core.VolumeID `json:"volume,omitempty"`
	Object core.ObjectID `json:"object,omitempty"`
	Detail string        `json:"detail"`
}

// Report is the outcome of one diff: what was compared and every
// divergence found, sorted by kind, client, then object.
type Report struct {
	ServerNode     string        `json:"server_node"`
	ClientsChecked int           `json:"clients_checked"`
	LeasesChecked  int           `json:"leases_checked"`
	Divergences    []Divergence  `json:"divergences,omitempty"`
	Epsilon        time.Duration `json:"epsilon_ns"`
}

// Clean reports whether the diff found no divergences.
func (r Report) Clean() bool { return len(r.Divergences) == 0 }

// Options tunes a diff.
type Options struct {
	// Epsilon is the expiry-skew tolerance. The effective bound per
	// client is max(Epsilon, that client's own configured Skew).
	Epsilon time.Duration
}

// serverIndex is the server dump rearranged for O(1) lookups.
type serverIndex struct {
	volumes map[core.VolumeID]*volumeIndex
	objects map[core.ObjectID]*objectIndex
}

type volumeIndex struct {
	epoch       core.Epoch
	leases      map[core.ClientID]core.LeaseSnapshot
	unreachable map[core.ClientID]bool
}

type objectIndex struct {
	volume  core.VolumeID
	version core.Version
	holders map[core.ClientID]core.LeaseSnapshot
}

func indexServer(s *ServerSnapshot) serverIndex {
	ix := serverIndex{
		volumes: make(map[core.VolumeID]*volumeIndex),
		objects: make(map[core.ObjectID]*objectIndex),
	}
	if s == nil {
		return ix
	}
	for _, vs := range s.Volumes {
		vi := &volumeIndex{
			epoch:       vs.Epoch,
			leases:      make(map[core.ClientID]core.LeaseSnapshot, len(vs.VolumeLeases)),
			unreachable: make(map[core.ClientID]bool, len(vs.Unreachable)),
		}
		for _, l := range vs.VolumeLeases {
			vi.leases[l.Client] = l
		}
		for _, c := range vs.Unreachable {
			vi.unreachable[c] = true
		}
		ix.volumes[vs.Volume] = vi
		for _, o := range vs.Objects {
			oi := &objectIndex{
				volume:  vs.Volume,
				version: o.Version,
				holders: make(map[core.ClientID]core.LeaseSnapshot, len(o.Holders)),
			}
			for _, h := range o.Holders {
				oi.holders[h.Client] = h
			}
			ix.objects[o.Object] = oi
		}
	}
	return ix
}

// Diff compares a server dump against one or more client dumps and
// classifies every divergence. The comparison is meaningful when the fleet
// is quiescent between the two scrapes: a grant or write landing between
// them shows up as a (transient) divergence, which is exactly what a
// monitoring loop wants to see converge to zero.
func Diff(server Dump, clients []Dump, opts Options) Report {
	r := Report{ServerNode: server.Node, Epsilon: opts.Epsilon}
	ix := indexServer(server.Server)

	if server.Server != nil {
		for _, vs := range server.Server.Volumes {
			for _, pa := range vs.PendingAcks {
				if !pa.Deadline.IsZero() && pa.Deadline.Before(server.Server.TakenAt) {
					r.Divergences = append(r.Divergences, Divergence{
						Kind: KindAckOverdue, Client: pa.Client, Volume: vs.Volume, Object: pa.Object,
						Detail: fmt.Sprintf("invalidation ack outstanding %v past its lease deadline",
							server.Server.TakenAt.Sub(pa.Deadline)),
					})
				}
			}
		}
	}

	for _, cd := range clients {
		for _, cs := range cd.Clients {
			r.ClientsChecked++
			eps := opts.Epsilon
			if cs.Skew > eps {
				eps = cs.Skew
			}
			fresh := func(expire time.Time) bool { return expire.Add(-cs.Skew).After(cs.TakenAt) }

			// Volume leases the client still counts on.
			volFresh := make(map[core.VolumeID]bool, len(cs.Volumes))
			for _, vl := range cs.Volumes {
				if !fresh(vl.Expire) {
					continue
				}
				volFresh[vl.Volume] = true
				vi, known := ix.volumes[vl.Volume]
				if !known {
					continue // another server's volume; out of scope
				}
				r.LeasesChecked++
				if vi.unreachable[cs.Client] {
					r.Divergences = append(r.Divergences, Divergence{
						Kind: KindUnreachableCaching, Client: cs.Client, Volume: vl.Volume,
						Detail: "server declared the client unreachable but it still trusts its volume lease",
					})
					continue
				}
				sl, held := vi.leases[cs.Client]
				switch {
				case !held:
					r.Divergences = append(r.Divergences, Divergence{
						Kind: KindHolderMismatch, Client: cs.Client, Volume: vl.Volume,
						Detail: fmt.Sprintf("client trusts a volume lease until %s the server does not hold",
							vl.Expire.Format(time.RFC3339Nano)),
					})
				case vl.Epoch != vi.epoch:
					r.Divergences = append(r.Divergences, Divergence{
						Kind: KindHolderMismatch, Client: cs.Client, Volume: vl.Volume,
						Detail: fmt.Sprintf("client at epoch %d, server at epoch %d", vl.Epoch, vi.epoch),
					})
				case absDiff(sl.Expire, vl.Expire) > eps:
					r.Divergences = append(r.Divergences, Divergence{
						Kind: KindExpirySkew, Client: cs.Client, Volume: vl.Volume,
						Detail: fmt.Sprintf("volume-lease expiry skew %v exceeds ε=%v (server %s, client %s)",
							absDiff(sl.Expire, vl.Expire), eps,
							sl.Expire.Format(time.RFC3339Nano), vl.Expire.Format(time.RFC3339Nano)),
					})
				}
			}

			// Object leases: unsafe only while the volume lease is also
			// fresh (the protocol's min(t, t_v) read bound).
			for _, ol := range cs.Objects {
				if !fresh(ol.Expire) || !volFresh[ol.Volume] {
					continue
				}
				oi, known := ix.objects[ol.Object]
				if !known {
					if _, volKnown := ix.volumes[ol.Volume]; !volKnown {
						continue // another server's object
					}
					r.LeasesChecked++
					r.Divergences = append(r.Divergences, Divergence{
						Kind: KindHolderMismatch, Client: cs.Client, Volume: ol.Volume, Object: ol.Object,
						Detail: "client caches an object the server does not know",
					})
					continue
				}
				r.LeasesChecked++
				vi := ix.volumes[oi.volume]
				if vi != nil && vi.unreachable[cs.Client] {
					r.Divergences = append(r.Divergences, Divergence{
						Kind: KindUnreachableCaching, Client: cs.Client, Volume: oi.volume, Object: ol.Object,
						Detail: fmt.Sprintf("server declared the client unreachable but it still claims a readable copy until %s",
							ol.Expire.Format(time.RFC3339Nano)),
					})
					continue
				}
				sl, held := oi.holders[cs.Client]
				switch {
				case !held:
					r.Divergences = append(r.Divergences, Divergence{
						Kind: KindHolderMismatch, Client: cs.Client, Volume: oi.volume, Object: ol.Object,
						Detail: fmt.Sprintf("client claims a readable copy (v%d) until %s but the server holds no lease record",
							ol.Version, ol.Expire.Format(time.RFC3339Nano)),
					})
				case ol.HasData && ol.Version != oi.version:
					r.Divergences = append(r.Divergences, Divergence{
						Kind: KindHolderMismatch, Client: cs.Client, Volume: oi.volume, Object: ol.Object,
						Detail: fmt.Sprintf("client caches v%d under a live lease, server is at v%d",
							ol.Version, oi.version),
					})
				case absDiff(sl.Expire, ol.Expire) > eps:
					r.Divergences = append(r.Divergences, Divergence{
						Kind: KindExpirySkew, Client: cs.Client, Volume: oi.volume, Object: ol.Object,
						Detail: fmt.Sprintf("object-lease expiry skew %v exceeds ε=%v (server %s, client %s)",
							absDiff(sl.Expire, ol.Expire), eps,
							sl.Expire.Format(time.RFC3339Nano), ol.Expire.Format(time.RFC3339Nano)),
					})
				}
			}
		}
	}

	sort.Slice(r.Divergences, func(i, j int) bool {
		a, b := r.Divergences[i], r.Divergences[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		if a.Volume != b.Volume {
			return a.Volume < b.Volume
		}
		return a.Object < b.Object
	})
	return r
}

func absDiff(a, b time.Time) time.Duration {
	d := a.Sub(b)
	if d < 0 {
		return -d
	}
	return d
}
