package main

import (
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-clients", "4", "-duration", "100ms", "-write-ratio", "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if o.clients != 4 || o.duration != 100*time.Millisecond || o.writeRatio != 0.5 {
		t.Errorf("options = %+v", o)
	}
	for _, bad := range [][]string{
		{"-clients", "0"},
		{"-duration", "0s"},
		{"-write-ratio", "1.5"},
		{"-objects", "-1"},
	} {
		if _, err := parseFlags(bad); err == nil {
			t.Errorf("flags %v accepted", bad)
		}
	}
}

func TestExecuteSelfContained(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	o, err := parseFlags([]string{
		"-clients", "4", "-objects", "8", "-duration", "300ms", "-write-ratio", "0.1",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := execute(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.reads.Load() == 0 {
		t.Error("no reads completed")
	}
	if res.writes.Load() == 0 {
		t.Error("no writes completed")
	}
	if res.errors.Load() != 0 {
		t.Errorf("%d errors during load", res.errors.Load())
	}
	if res.readLat.Count() != res.reads.Load() {
		t.Errorf("latency samples %d != reads %d", res.readLat.Count(), res.reads.Load())
	}
	if res.serverStats == nil {
		t.Error("self-contained run missing server stats")
	}
	// The workload is read-dominated over a warm cache: most reads must be
	// local.
	if res.localReads == 0 {
		t.Error("no locally served reads; caching is broken")
	}
}

func TestExecuteSelfContainedTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	o, err := parseFlags([]string{
		"-tcp", "-clients", "2", "-objects", "4", "-duration", "200ms", "-write-ratio", "0",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := execute(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.reads.Load() == 0 || res.errors.Load() != 0 {
		t.Errorf("reads=%d errors=%d", res.reads.Load(), res.errors.Load())
	}
}
