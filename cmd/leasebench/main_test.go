package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/obs"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-clients", "4", "-duration", "100ms", "-write-ratio", "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if o.clients != 4 || o.duration != 100*time.Millisecond || o.writeRatio != 0.5 {
		t.Errorf("options = %+v", o)
	}
	for _, bad := range [][]string{
		{"-clients", "0"},
		{"-duration", "0s"},
		{"-write-ratio", "1.5"},
		{"-objects", "-1"},
	} {
		if _, err := parseFlags(bad); err == nil {
			t.Errorf("flags %v accepted", bad)
		}
	}
}

func TestExecuteSelfContained(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	o, err := parseFlags([]string{
		"-clients", "4", "-objects", "8", "-duration", "300ms", "-write-ratio", "0.1",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := execute(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.reads.Load() == 0 {
		t.Error("no reads completed")
	}
	if res.writes.Load() == 0 {
		t.Error("no writes completed")
	}
	if res.errors.Load() != 0 {
		t.Errorf("%d errors during load", res.errors.Load())
	}
	if res.readLat.Count() != res.reads.Load() {
		t.Errorf("latency samples %d != reads %d", res.readLat.Count(), res.reads.Load())
	}
	if res.serverStats == nil {
		t.Error("self-contained run missing server stats")
	}
	// The workload is read-dominated over a warm cache: most reads must be
	// local.
	if res.localReads == 0 {
		t.Error("no locally served reads; caching is broken")
	}
}

func TestExecuteSelfContainedTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	o, err := parseFlags([]string{
		"-tcp", "-clients", "2", "-objects", "4", "-duration", "200ms", "-write-ratio", "0",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := execute(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.reads.Load() == 0 || res.errors.Load() != 0 {
		t.Errorf("reads=%d errors=%d", res.reads.Load(), res.errors.Load())
	}
}

func TestExecuteTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	o, err := parseFlags([]string{
		"-trace", "-clients", "4", "-objects", "8", "-duration", "400ms", "-write-ratio", "0.2",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := execute(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.writes.Load() == 0 {
		t.Fatal("no writes completed")
	}
	if res.spans == nil || res.load == nil {
		t.Fatal("-trace did not wire the span recorder / load timeline")
	}

	// Every traced write yields a causal chain: a client-write span
	// parenting a server root whose sequential children (serialize, ack
	// wait) fit inside the root's duration.
	spans := res.spans.Snapshot()
	byID := map[uint64]obs.Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	var roots, chained int
	for _, s := range spans {
		if s.Kind != obs.SpanWrite {
			continue
		}
		roots++
		if p, ok := byID[s.Parent]; ok && p.Kind == obs.SpanClientWrite && p.Trace == s.Trace {
			chained++
		}
		var seq time.Duration
		for _, c := range spans {
			if c.Parent == s.ID && (c.Kind == obs.SpanSerialize || c.Kind == obs.SpanAckWait) {
				if c.Trace != s.Trace {
					t.Errorf("child %s trace %d != root trace %d", c.Kind, c.Trace, s.Trace)
				}
				seq += c.Dur
			}
		}
		if seq > s.Dur {
			t.Errorf("write %s: sequential children %v exceed root %v", s.Object, seq, s.Dur)
		}
	}
	if roots == 0 {
		t.Error("no server write root spans recorded")
	}
	// The ring may have evicted some client spans, but with 8192 slots and
	// a sub-second run every root's parent should still be present.
	if chained == 0 {
		t.Error("no write root is chained to a client-write span")
	}

	// The run itself is the burst: the timeline must show busy seconds and
	// committed writes.
	b := res.load.BurstWindow(0)
	if b.Peak == 0 || b.BusySeconds == 0 {
		t.Errorf("load burst = %+v", b)
	}

	// And the report renders the trace/load summary lines.
	tmp, err := os.CreateTemp(t.TempDir(), "report")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := res.report(tmp, o); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace:", "server write roots", "load: peak"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestExecuteAuditedWiresHealth(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	dir := t.TempDir()
	o, err := parseFlags([]string{
		"-audit", "-flight-dir", dir,
		"-clients", "2", "-objects", "4", "-duration", "300ms", "-write-ratio", "0.1",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := execute(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.health == nil {
		t.Fatal("-audit did not wire the health engine")
	}
	rep := res.health.Snapshot()
	if rep.Status != "ok" || rep.DumpsWritten != 0 {
		t.Errorf("clean run health = %+v", rep)
	}
	tmp, err := os.CreateTemp(t.TempDir(), "report")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := res.report(tmp, o); err != nil {
		t.Fatalf("clean audited run reported error: %v", err)
	}
}

// TestAuditViolationLeavesFlightDump crafts an invariant violation (an epoch
// moving backwards) and asserts the failing report (1) returns a non-zero
// error, the satellite exit-code contract, and (2) leaves a parseable flight
// dump behind.
func TestAuditViolationLeavesFlightDump(t *testing.T) {
	dir := t.TempDir()
	aud := audit.New(audit.LiveConfig(core.Config{
		ObjectLease: time.Minute, VolumeLease: 5 * time.Second, Mode: core.ModeEager,
	}, false))
	flight := health.NewFlightRecorder("bench", 64, time.Minute)
	engine := health.NewEngine(health.Options{Node: "bench", Flight: flight, DumpDir: dir})
	now := time.Now()
	for _, epoch := range []core.Epoch{5, 3} { // 5 then 3: epoch monotonicity breach
		ev := obs.Event{Type: obs.EvVolLeaseGrant, At: now, Node: "srv", Client: "c", Volume: "v", Epoch: epoch}
		aud.Observe(ev)
		flight.Observe(ev)
	}
	if len(aud.Violations()) == 0 {
		t.Fatal("crafted event stream recorded no violation")
	}

	res := &result{
		readLat:  metrics.NewLatencyHistogram(),
		writeLat: metrics.NewLatencyHistogram(),
		elapsed:  time.Second,
		aud:      aud,
		health:   engine,
	}
	tmp, err := os.CreateTemp(t.TempDir(), "report")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := res.report(tmp, options{duration: time.Second}); err == nil {
		t.Fatal("violating run reported success")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "flight-bench-*.json"))
	if len(files) != 1 {
		t.Fatalf("violating run left %d dumps, want 1", len(files))
	}
	d, err := health.ReadDump(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 2 || d.Trigger == nil {
		t.Fatalf("dump = %d events, trigger %+v", len(d.Events), d.Trigger)
	}
	out, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "audit: flight dump ") {
		t.Errorf("report does not point at the dump:\n%s", out)
	}
}
