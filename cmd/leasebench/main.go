// Command leasebench load-tests the live volume-lease stack: it spins up a
// server (in-process, or targets an external leased via -addr), drives it
// with a fleet of concurrent clients mixing cached reads, lease renewals,
// and writes, and reports throughput plus latency quantiles per operation
// class — the live-system counterpart of the trace-driven simulator.
//
// Usage:
//
//	leasebench                                    # self-contained, defaults
//	leasebench -clients 50 -duration 10s -write-ratio 0.05
//	leasebench -addr 127.0.0.1:7400 -volume site  # against a running leased
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/health"
	"repro/internal/loadtl"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/state"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leasebench:", err)
		os.Exit(1)
	}
}

// options collects the benchmark parameters.
type options struct {
	addr        string
	volume      string
	clients     int
	objects     int
	duration    time.Duration
	writeRatio  float64
	objLease    time.Duration
	volLease    time.Duration
	useTCP      bool
	tcpBatch    bool
	dialTimeout time.Duration
	wireBench   time.Duration
	debugAddr   string
	audit       bool
	trace       bool
	spanSample  int
	flightDir   string
	cost        bool
	costOut     string
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("leasebench", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.addr, "addr", "", "target an external server (default: self-contained in-process server)")
	fs.StringVar(&o.volume, "volume", "bench", "volume id")
	fs.IntVar(&o.clients, "clients", 16, "concurrent clients")
	fs.IntVar(&o.objects, "objects", 64, "objects in the volume (self-contained mode)")
	fs.DurationVar(&o.duration, "duration", 3*time.Second, "benchmark duration")
	fs.Float64Var(&o.writeRatio, "write-ratio", 0.02, "fraction of operations that are writes")
	fs.DurationVar(&o.objLease, "object-lease", time.Minute, "object lease (self-contained mode)")
	fs.DurationVar(&o.volLease, "volume-lease", 5*time.Second, "volume lease (self-contained mode)")
	fs.BoolVar(&o.useTCP, "tcp", false, "self-contained mode: use loopback TCP instead of the in-memory transport")
	fs.BoolVar(&o.tcpBatch, "tcp-batch", true, "with TCP: batch outbound frames per connection (one kernel flush per burst)")
	fs.DurationVar(&o.dialTimeout, "dial-timeout", 10*time.Second, "TCP dial timeout")
	fs.DurationVar(&o.wireBench, "wire-bench", 0,
		"instead of the RPC workload, measure raw per-connection wire throughput on loopback TCP for this long per mode, batched vs flush-per-send")
	fs.StringVar(&o.debugAddr, "debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof during the run (empty = off)")
	fs.BoolVar(&o.audit, "audit", false, "self-contained mode: run the online consistency auditor and fail on any invariant violation")
	fs.BoolVar(&o.trace, "trace", false, "record causal write-path spans and the per-second load timeline (summarized after the run; served at /debug/spans and /debug/load with -debug-addr)")
	fs.IntVar(&o.spanSample, "span-sample", 1, "with -trace, record 1 in N traces")
	fs.StringVar(&o.flightDir, "flight-dir", "flight-dumps",
		"with -audit, write a flight recorder dump here when a violation is recorded ($FLIGHT_DUMP_DIR overrides)")
	fs.BoolVar(&o.cost, "cost", true, "account per-message-kind wire-path cost and report it after the run")
	fs.StringVar(&o.costOut, "cost-out", "", "write the final cost dump (the /debug/cost JSON) to this file; `figures -cost` renders it")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.clients <= 0 || o.objects <= 0 || o.duration <= 0 {
		return o, fmt.Errorf("clients, objects, and duration must be positive")
	}
	if o.writeRatio < 0 || o.writeRatio > 1 {
		return o, fmt.Errorf("write-ratio must be in [0,1]")
	}
	if o.audit && o.addr != "" {
		// Auditing an external server would only see the client half of the
		// event stream and flag spurious violations.
		return o, fmt.Errorf("-audit requires the self-contained server (omit -addr)")
	}
	return o, nil
}

func run(out *os.File, args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	if o.wireBench > 0 {
		return runWireBench(out, o.wireBench)
	}
	res, err := execute(o)
	if err != nil {
		return err
	}
	return res.report(out, o)
}

// result aggregates the measurement.
type result struct {
	reads, writes, errors atomic.Int64
	readLat               *metrics.LatencyHistogram
	writeLat              *metrics.LatencyHistogram
	elapsed               time.Duration
	serverStats           *core.Stats // nil when targeting an external server
	localReads            int64
	serverReads           int64
	invalidations         int64
	aud                   *audit.Auditor        // nil unless -audit
	spans                 *obs.SpanRecorder     // nil unless -trace
	load                  *loadtl.Timeline      // nil unless -trace
	health                *health.Engine        // nil unless -audit
	cost                  *cost.Accounting      // nil unless -cost
	batch                 *transport.BatchStats // nil unless TCP
}

// execute runs the load.
func execute(o options) (*result, error) {
	var (
		net  transport.Network
		addr = o.addr
	)

	// Optional live observability: a registry scraped over HTTP while the
	// benchmark runs, fed by the self-contained server (when present) and by
	// the clients' cache counters. With -audit the consistency auditor taps
	// the same event stream and the run fails on any invariant violation.
	var (
		observer *obs.Observer
		rec      *metrics.Recorder
		aud      *audit.Auditor
		spanRec  *obs.SpanRecorder
		load     *loadtl.Timeline
		engine   *health.Engine
	)
	// Lease-state introspection: the debug server starts before the
	// self-contained server and the client fleet exist, so /debug/leases and
	// the lease_state_* gauges read them through a mutex-guarded box filled
	// once they are built (empty dump until then).
	stateBox := &struct {
		sync.Mutex
		addr    string
		srv     *server.Server
		clients []*client.Client
	}{}
	stateSrc := state.NewSource(func() state.Dump {
		stateBox.Lock()
		srv, cls, srvAddr := stateBox.srv, stateBox.clients, stateBox.addr
		stateBox.Unlock()
		d := state.Dump{Role: state.RoleClient, Node: "bench"}
		if srv != nil {
			sd := srv.StateSnapshot()
			d.Role, d.Server, d.TakenAt = state.RoleServer, sd.Server, sd.TakenAt
		}
		for _, cl := range cls {
			cs := cl.StateSnapshot()
			cs.Server = srvAddr
			if cs.TakenAt.After(d.TakenAt) {
				d.TakenAt = cs.TakenAt
			}
			d.Clients = append(d.Clients, cs)
		}
		if d.TakenAt.IsZero() {
			d.TakenAt = time.Now()
		}
		return d
	})

	if o.debugAddr != "" || o.audit || o.trace {
		reg := obs.NewRegistry()
		observer = &obs.Observer{Metrics: reg}
		rec = metrics.NewRecorder()
		obs.RegisterRecorder(reg, rec)
		state.Register(reg, "bench", stateSrc, o.volLease)
		routes := []obs.Route{{Path: "/debug/leases", Handler: state.Handler(stateSrc)}}
		var sinks []obs.Sink
		if o.audit {
			aud = audit.New(audit.LiveConfig(core.Config{
				ObjectLease: o.objLease,
				VolumeLease: o.volLease,
				Mode:        core.ModeEager,
			}, false))
			aud.Register(reg)
			sinks = append(sinks, aud)
			routes = append(routes, obs.Route{Path: "/debug/audit", Handler: aud})
		}
		if o.trace {
			spanRec = obs.NewSpanRecorder(8192, o.spanSample)
			observer.Spans = spanRec
			load = loadtl.New(o.volume, 300, time.Now)
			load.Register(reg)
			sinks = append(sinks, load)
			routes = append(routes,
				obs.Route{Path: "/debug/spans", Handler: obs.SpansHandler(spanRec)},
				obs.Route{Path: "/debug/load", Handler: load.Handler()})
		}
		if o.audit {
			// Black box for the run: on any audit violation the engine
			// freezes the trailing event window into a dump file, so a
			// failing benchmark leaves its evidence behind.
			flightRec := health.NewFlightRecorder("bench", 16384, o.duration+30*time.Second)
			flightRec.AttachSpans(spanRec)
			flightRec.AttachTimeline(load)
			flightRec.AttachState(stateSrc)
			sinks = append(sinks, flightRec)
			engine = health.NewEngine(health.Options{
				Node:    "bench",
				Flight:  flightRec,
				DumpDir: health.DumpDir(o.flightDir),
				Tick:    200 * time.Millisecond,
				Tail:    200 * time.Millisecond,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "leasebench: "+format+"\n", args...)
				},
			}, health.DefaultDetectors(health.DetectorConfig{
				AuditViolations: func() float64 { return float64(len(aud.Violations())) },
			})...)
			engine.Register(reg)
			sinks = append(sinks, engine)
			engine.Start()
			defer engine.Close()
			routes = append(routes,
				obs.Route{Path: "/debug/health", Handler: health.Handler(engine)},
				obs.Route{Path: "/debug/flightrecorder", Handler: health.FlightHandler(engine)})
		}
		if len(sinks) > 0 {
			observer.Tracer = obs.NewTracer(sinks...)
		}
		if o.debugAddr != "" {
			dbg, err := obs.Serve(o.debugAddr, reg, nil, routes...)
			if err != nil {
				return nil, err
			}
			defer dbg.Close()
			fmt.Fprintf(os.Stderr, "leasebench: debug server on http://%s\n", dbg.Addr())
		}
	}

	var acct *cost.Accounting
	if o.cost {
		acct = cost.New("bench", time.Now)
		if observer != nil {
			acct.Register(observer.Metrics)
		}
	}

	var batch *transport.BatchStats
	tcp := func() transport.TCP {
		batch = &transport.BatchStats{}
		return transport.TCP{DialTimeout: o.dialTimeout, Immediate: !o.tcpBatch, Stats: batch}
	}

	var srv *server.Server
	if addr == "" {
		// Self-contained: build the server here.
		if o.useTCP {
			net = tcp()
			addr = "127.0.0.1:0"
		} else {
			mem := transport.NewMemory()
			net = mem
			addr = "bench-origin:1"
		}
		// Cost accounting wraps the raw network innermost; server and clients
		// share the process, so each message is accounted twice: once sent,
		// once received (KindStat.Messages() takes the max of the two).
		net = acct.Network(net)
		if observer != nil {
			// Tap the wire so the load timeline sees every message. Server
			// and clients share the process (and the observer), so each
			// message is counted twice: once sent, once received.
			net = transport.ObserveNetwork(net, obs.WireObserver(observer, "bench", time.Now))
		}
		var err error
		srv, err = server.New(server.Config{
			Name: "bench-origin",
			Addr: addr,
			Net:  net,
			Table: core.Config{
				ObjectLease: o.objLease,
				VolumeLease: o.volLease,
				Mode:        core.ModeEager,
			},
			MsgTimeout: 100 * time.Millisecond,
			Recorder:   rec,
			Obs:        observer,
		})
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		addr = srv.Addr()
		if err := srv.AddVolume(core.VolumeID(o.volume)); err != nil {
			return nil, err
		}
		payload := make([]byte, 2048)
		for i := 0; i < o.objects; i++ {
			oid := core.ObjectID(fmt.Sprintf("obj-%d", i))
			if err := srv.AddObject(core.VolumeID(o.volume), oid, payload); err != nil {
				return nil, err
			}
		}
	} else {
		net = acct.Network(tcp())
		if observer != nil {
			net = transport.ObserveNetwork(net, obs.WireObserver(observer, "bench", time.Now))
		}
	}

	res := &result{
		readLat:  metrics.NewLatencyHistogram(),
		writeLat: metrics.NewLatencyHistogram(),
	}

	clients := make([]*client.Client, o.clients)
	for i := range clients {
		cl, err := client.Dial(net, addr, client.Config{
			ID:      core.ClientID(fmt.Sprintf("bench-%d", i)),
			Timeout: 10 * time.Second,
			Redial:  true,
			Obs:     observer,
		})
		if err != nil {
			return nil, fmt.Errorf("dial client %d: %w", i, err)
		}
		defer cl.Close()
		clients[i] = cl
	}
	stateBox.Lock()
	stateBox.addr, stateBox.srv, stateBox.clients = addr, srv, clients
	stateBox.Unlock()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	start := time.Now()
	for i, cl := range clients {
		wg.Add(1)
		go func(cl *client.Client, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			payload := make([]byte, 2048)
			for {
				select {
				case <-stop:
					return
				default:
				}
				oid := core.ObjectID(fmt.Sprintf("obj-%d", rng.Intn(o.objects)))
				t0 := time.Now()
				if rng.Float64() < o.writeRatio {
					if _, _, err := cl.Write(oid, payload); err != nil {
						res.errors.Add(1)
						continue
					}
					res.writeLat.Observe(time.Since(t0))
					res.writes.Add(1)
				} else {
					if _, err := cl.Read(core.VolumeID(o.volume), oid); err != nil {
						res.errors.Add(1)
						continue
					}
					res.readLat.Observe(time.Since(t0))
					res.reads.Add(1)
				}
			}
		}(cl, int64(i)+1)
	}
	time.Sleep(o.duration)
	close(stop)
	wg.Wait()
	res.elapsed = time.Since(start)

	for _, cl := range clients {
		l, s, inv := cl.Stats()
		res.localReads += l
		res.serverReads += s
		res.invalidations += inv
	}
	if srv != nil {
		st := srv.Stats()
		res.serverStats = &st
	}
	res.aud = aud
	res.spans = spanRec
	res.load = load
	res.health = engine
	res.cost = acct
	res.batch = batch
	return res, nil
}

// report prints the measurement.
func (r *result) report(out *os.File, o options) error {
	secs := r.elapsed.Seconds()
	total := r.reads.Load() + r.writes.Load()
	fmt.Fprintf(out, "leasebench: %d clients, %d objects, %.0f%% writes, %v\n",
		o.clients, o.objects, o.writeRatio*100, o.duration)
	fmt.Fprintf(out, "throughput: %.0f ops/s (%d reads, %d writes, %d errors)\n",
		float64(total)/secs, r.reads.Load(), r.writes.Load(), r.errors.Load())
	if err := r.readLat.WriteSummary(out, "read"); err != nil {
		return err
	}
	if r.writeLat.Count() > 0 {
		if err := r.writeLat.WriteSummary(out, "write"); err != nil {
			return err
		}
	}
	if r.reads.Load() > 0 {
		fmt.Fprintf(out, "cache: %.1f%% of reads served locally, %d invalidations received\n",
			100*float64(r.localReads)/float64(r.localReads+r.serverReads), r.invalidations)
	}
	if r.serverStats != nil {
		fmt.Fprintf(out, "server state: %d object leases, %d volume leases (%d bytes)\n",
			r.serverStats.ObjectLeases, r.serverStats.VolumeLeases, r.serverStats.StateBytes)
	}
	if r.spans != nil {
		spans := r.spans.Snapshot()
		roots, slowest := 0, -1
		for i, s := range spans {
			if s.Kind != obs.SpanWrite {
				continue
			}
			roots++
			if slowest < 0 || s.Dur > spans[slowest].Dur {
				slowest = i
			}
		}
		fmt.Fprintf(out, "trace: %d spans retained (%d total recorded), %d server write roots\n",
			len(spans), r.spans.Total(), roots)
		if roots > 0 {
			root := spans[slowest]
			var children time.Duration
			for _, s := range spans {
				// Serialize and ack-wait run sequentially inside the root;
				// fan-out overlaps the ack wait, so it is not summed.
				if s.Parent == root.ID && (s.Kind == obs.SpanSerialize || s.Kind == obs.SpanAckWait) {
					children += s.Dur
				}
			}
			fmt.Fprintf(out, "trace: slowest write %s took %v (sequential children %v)\n",
				root.Object, root.Dur, children)
		}
	}
	if r.load != nil {
		b := r.load.BurstWindow(0)
		fmt.Fprintf(out, "load: peak %d msg/s, mean %.1f msg/s, burst ratio %.1f (%d busy / %d idle seconds)\n",
			b.Peak, b.Mean, b.Ratio, b.BusySeconds, b.IdleSeconds)
	}
	if r.cost != nil {
		d := r.cost.Snapshot()
		msgs := int64(0)
		for _, k := range d.Kinds {
			msgs += k.Messages()
		}
		fmt.Fprintf(out, "cost: %d messages, %d bytes sent, %d bytes received\n",
			msgs, d.Totals.BytesSent, d.Totals.BytesRecv)
		for _, k := range d.Kinds {
			line := fmt.Sprintf("cost: %-16s %8d msgs %10d bytes", k.Kind, k.Messages(), k.BytesSent+k.BytesRecv)
			if k.Encode != nil {
				line += fmt.Sprintf("  encode p99 %vns", k.Encode.P99Ns)
			}
			if k.Decode != nil {
				line += fmt.Sprintf("  decode p99 %vns", k.Decode.P99Ns)
			}
			fmt.Fprintln(out, line)
		}
		if o.costOut != "" {
			raw, err := json.MarshalIndent(d, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(o.costOut, append(raw, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "cost: dump written to %s\n", o.costOut)
		}
	}
	if r.batch != nil {
		if b := r.batch.Snapshot(); b.Flushes > 0 {
			fmt.Fprintf(out, "batch: %d frames in %d kernel flushes (%.2f frames/flush, %d coalesced)\n",
				b.Frames, b.Flushes, float64(b.Frames)/float64(b.Flushes), b.Coalesced)
		}
	}
	if r.aud != nil {
		s := r.aud.Snapshot()
		fmt.Fprintf(out, "audit: %d events, %d stale reads, max staleness %v (bound %v)\n",
			s.Events, s.StaleReads, s.MaxStaleness, s.StalenessBound)
		if err := r.aud.Err(); err != nil {
			// Exit non-zero, but leave the flight recording behind first:
			// the engine's audit-violation rule usually dumped mid-run; if
			// the run ended before a tick saw the violation, freeze now.
			if rep := r.health.Snapshot(); r.health != nil {
				if rep.DumpsWritten == 0 {
					if path, derr := r.health.ForceDump("audit violations at end of run"); derr == nil {
						rep.DumpFiles = append(rep.DumpFiles, path)
					}
				}
				for _, f := range rep.DumpFiles {
					fmt.Fprintf(out, "audit: flight dump %s\n", f)
				}
			}
			return err
		}
		fmt.Fprintln(out, "audit: all invariants held")
	}
	return nil
}
