package main

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// runWireBench measures raw per-connection delivered message throughput on
// loopback TCP — one sender streaming lease renewals, one receiver draining
// pooled frames — once with the batched flusher and once flush-per-send,
// and reports the ratio. This is the transport-level demonstration of the
// batching win: the RPC-shaped main workload cannot show it, because every
// operation waits out a round trip and hands the batcher a single frame at
// a time (see DESIGN.md §11.1).
func runWireBench(out io.Writer, d time.Duration) error {
	msg := wire.VolLease{Seq: 43, Volume: "bench", Expire: time.Now().Add(time.Minute), Epoch: 5}
	stats := &transport.BatchStats{}
	batched, err := wireThroughput(transport.TCP{Stats: stats}, msg, d)
	if err != nil {
		return fmt.Errorf("wire-bench batched: %w", err)
	}
	immediate, err := wireThroughput(transport.TCP{Immediate: true}, msg, d)
	if err != nil {
		return fmt.Errorf("wire-bench immediate: %w", err)
	}
	snap := stats.Snapshot()
	fmt.Fprintf(out, "wire: one connection, %d-byte renew frames, %v per mode\n",
		wire.Size(msg)+4, d)
	fmt.Fprintf(out, "wire: batched   %10.0f msgs/s (%0.1f frames/flush)\n",
		batched, float64(snap.Frames)/float64(max(snap.Flushes, 1)))
	fmt.Fprintf(out, "wire: immediate %10.0f msgs/s (one kernel flush per frame)\n", immediate)
	fmt.Fprintf(out, "wire: batching delivers %.1fx the per-connection message throughput\n",
		batched/immediate)
	return nil
}

// wireThroughput pumps m through a fresh loopback pair for roughly d and
// returns delivered messages per second. The receiver drains raw pooled
// frames without decoding, so the number measures the transport itself.
func wireThroughput(n transport.Network, m wire.Message, d time.Duration) (float64, error) {
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	var (
		srvConn transport.Conn
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srvConn, _ = l.Accept()
	}()
	cli, err := n.Dial(l.Addr())
	if err != nil {
		return 0, err
	}
	defer cli.Close()
	wg.Wait()
	if srvConn == nil {
		return 0, fmt.Errorf("accept failed")
	}
	defer srvConn.Close()
	fr, ok := srvConn.(transport.FrameBufReceiver)
	if !ok {
		return 0, fmt.Errorf("%T does not expose RecvFrameBuf", srvConn)
	}

	var delivered atomic.Int64
	go func() {
		for {
			buf, err := fr.RecvFrameBuf()
			if err != nil {
				return
			}
			buf.Release()
			delivered.Add(1)
		}
	}()

	sendErr := make(chan error, 1)
	stop := make(chan struct{})
	go func() {
		for {
			// Check the clock in coarse strides: a time.Now per send would
			// throttle the very throughput under measurement.
			for i := 0; i < 1024; i++ {
				if err := cli.Send(m); err != nil {
					sendErr <- err
					return
				}
			}
			select {
			case <-stop:
				sendErr <- nil
				return
			default:
			}
		}
	}()

	start := time.Now()
	timer := time.NewTimer(d)
	select {
	case <-timer.C:
	case err := <-sendErr:
		timer.Stop()
		if err != nil {
			return 0, err
		}
	}
	close(stop)
	if err := <-sendErr; err != nil {
		return 0, err
	}
	got := delivered.Load()
	elapsed := time.Since(start)
	return float64(got) / elapsed.Seconds(), nil
}
