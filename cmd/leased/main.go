// Command leased runs a networked volume-lease server over TCP, serving the
// protocol of Figures 2-4. Objects are seeded from the -seed flag or a
// directory tree; writes arrive from clients via the WriteReq RPC.
//
// Usage:
//
//	leased -addr :7400 -volume site -objects 100
//	leased -addr :7400 -volume docs -dir ./content      # one object per file
//	leased -addr :7400 -volume site -debug-addr :7401   # metrics + pprof
//
// Flags select the consistency mode: -mode eager (basic volume leases) or
// -mode delayed (delayed invalidations, with -discard for the paper's d).
//
// With -debug-addr set, a debug HTTP server exposes /metrics (Prometheus
// text), /debug/vars (JSON), /debug/pprof/ (runtime profiles) and
// /debug/events (the last -trace protocol events, filterable with ?type=
// and ?since=). -spans enables causal write-path tracing (spans land in
// /debug/spans; -span-sample keeps 1 in N traces), and -load-window keeps a
// per-second load timeline served at /debug/load and exported as the
// lease_load_* gauges. -cost (default on) accounts per-message-kind frames,
// bytes, and encode/decode time at the transport boundary (lease_cost_*
// metrics, /debug/cost with ?kind= and ?volume= filters), and
// -profile-interval samples heap/goroutine (optionally CPU) profiles into a
// flight-recorder-style ring served at /debug/profile/ring. /debug/leases
// serves the live lease-table snapshot (who holds what until when, with
// ?volume=/?client=/?expiring= filters) and the lease_state_* gauges
// summarize it; flight dumps freeze the same snapshot.
//
// -audit attaches the online consistency auditor (internal/audit): every
// protocol event also feeds a shadow model of the lease state, violations
// land in the lease_audit_* metrics and the daemon exits non-zero at
// shutdown if any were recorded. The audit report is served at /debug/audit.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/health"
	"repro/internal/loadtl"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/state"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leased:", err)
		os.Exit(1)
	}
}

// options collects everything run() parses from flags, so tests can start a
// fully wired daemon in-process.
type options struct {
	addr        string
	volume      string
	nObjects    int
	dir         string
	objLease    time.Duration
	volLease    time.Duration
	mode        string
	discard     time.Duration
	msgTimeout  time.Duration
	bestEffort  bool
	stateDir    string
	verbose     bool
	debugAddr   string
	traceLen    int
	slowWrite   time.Duration
	audit       bool
	spans       int
	spanSample  int
	loadWindow  int
	flight      int
	flightWin   time.Duration
	flightDir   string
	cost        bool
	profEvery   time.Duration
	profRing    int
	profCPU     time.Duration
	tcpBatch    bool
	dialTimeout time.Duration

	// net overrides the transport (tests); nil means TCP.
	net transport.Network
}

// instance is a started daemon: the lease server plus its observability
// plumbing.
type instance struct {
	srv     *server.Server
	debug   *obs.DebugServer
	rec     *metrics.Recorder
	reg     *obs.Registry
	ring    *obs.RingSink
	aud     *audit.Auditor
	spans   *obs.SpanRecorder
	load    *loadtl.Timeline
	flight  *health.FlightRecorder
	health  *health.Engine
	cost    *cost.Accounting
	prof    *cost.Profiler
	seeded  int
	mode    core.Mode
	volLog  string
	objLog  time.Duration
	volLeas time.Duration
}

func (in *instance) Close() {
	if in.debug != nil {
		in.debug.Close()
	}
	in.prof.Close()
	in.health.Close()
	in.srv.Close()
}

// start builds the observability stack, starts the server, registers the
// volume, and seeds objects.
func start(opts options) (*instance, error) {
	tableCfg := core.Config{
		ObjectLease:     opts.objLease,
		VolumeLease:     opts.volLease,
		Mode:            core.ModeEager,
		InactiveDiscard: opts.discard,
	}
	switch opts.mode {
	case "eager":
	case "delayed":
		tableCfg.Mode = core.ModeDelayed
	default:
		return nil, fmt.Errorf("unknown mode %q", opts.mode)
	}

	var batch *transport.BatchStats
	netw := opts.net
	if netw == nil {
		batch = &transport.BatchStats{}
		netw = transport.TCP{
			DialTimeout: opts.dialTimeout,
			Immediate:   !opts.tcpBatch,
			Stats:       batch,
		}
	}

	in := &instance{
		rec:     metrics.NewRecorder(),
		mode:    tableCfg.Mode,
		volLog:  opts.volume,
		objLog:  opts.objLease,
		volLeas: opts.volLease,
	}

	// Observability: always collect (the cost is atomic counters); the debug
	// address only controls whether anything is served.
	in.reg = obs.NewRegistry()
	observer := &obs.Observer{Metrics: in.reg}
	var sinks []obs.Sink
	if opts.traceLen > 0 {
		in.ring = obs.NewRingSink(opts.traceLen)
		sinks = append(sinks, in.ring)
	}
	if opts.audit {
		in.aud = audit.New(audit.LiveConfig(tableCfg, opts.bestEffort))
		in.aud.Register(in.reg)
		sinks = append(sinks, in.aud)
	}
	if opts.loadWindow > 0 {
		in.load = loadtl.New(opts.volume, opts.loadWindow, time.Now)
		in.load.Register(in.reg)
		sinks = append(sinks, in.load)
	}
	if opts.flight > 0 {
		in.flight = health.NewFlightRecorder(opts.volume, opts.flight, opts.flightWin)
		in.flight.AttachTimeline(in.load)
		sinks = append(sinks, in.flight)
		detCfg := health.DetectorConfig{
			// Sample funcs poll at tick time; in.srv/in.aud are set below,
			// before the engine starts.
			Backlog: func() float64 {
				if in.srv == nil {
					return 0
				}
				return float64(in.srv.Stats().PendingInvalidation)
			},
		}
		hopts := health.Options{
			Node:    opts.volume,
			Flight:  in.flight,
			DumpDir: health.DumpDir(opts.flightDir),
			Logf:    log.Printf,
			Sample: func() map[string]float64 {
				if in.srv == nil {
					return nil
				}
				st := in.srv.Stats()
				return map[string]float64{
					"object_leases":        float64(st.ObjectLeases),
					"volume_leases":        float64(st.VolumeLeases),
					"pending_invalidation": float64(st.PendingInvalidation),
					"unreachable_clients":  float64(st.UnreachableClients),
				}
			},
		}
		if opts.audit {
			detCfg.AuditViolations = func() float64 {
				return float64(len(in.aud.Violations()))
			}
			// Staleness-budget burn: the worst staleness the auditor has
			// observed as a fraction of the paper's min(t, t_v) bound.
			bound := opts.objLease
			if opts.volLease < bound {
				bound = opts.volLease
			}
			if bound > 0 {
				hopts.StalenessBurn = func() float64 {
					return float64(in.aud.MaxStaleness()) / float64(bound)
				}
			}
		}
		in.health = health.NewEngine(hopts, health.DefaultDetectors(detCfg)...)
		in.health.Register(in.reg)
		sinks = append(sinks, in.health)
	}
	if len(sinks) > 0 {
		observer.Tracer = obs.NewTracer(sinks...)
	}
	if opts.spans > 0 {
		in.spans = obs.NewSpanRecorder(opts.spans, opts.spanSample)
		if opts.slowWrite > 0 {
			// Mirror the server's slow-write log at the span layer: any root
			// write span at or past the threshold also lands in the event
			// trace as an EvSlowOp.
			in.spans.SlowOp(opts.slowWrite, observer.Tracer)
		}
		observer.Spans = in.spans
		in.flight.AttachSpans(in.spans)
	}
	obs.RegisterRecorder(in.reg, in.rec)
	if opts.cost {
		in.cost = cost.New(opts.volume, time.Now)
		in.cost.Register(in.reg)
	}
	if opts.profEvery > 0 {
		in.prof = cost.NewProfiler(cost.ProfilerOptions{
			Node:      opts.volume,
			Clock:     clock.Real{},
			Interval:  opts.profEvery,
			Ring:      opts.profRing,
			CPUWindow: opts.profCPU,
			Logf:      log.Printf,
		})
		// Anomaly dumps freeze the profile ring alongside events and spans.
		in.flight.AttachProfiles(in.prof)
	}
	// Cost accounting wraps the raw network INNERMOST so TCP conns still
	// expose their frame-level capabilities (timed encode/decode); the wire
	// observer counts messages from the outside.
	netw = transport.ObserveNetwork(in.cost.Network(netw), obs.WireObserver(observer, opts.volume, time.Now))
	obs.RegisterBatchStats(in.reg, opts.volume, batch)

	cfg := server.Config{
		Name:               opts.volume,
		Addr:               opts.addr,
		Net:                netw,
		Table:              tableCfg,
		MsgTimeout:         opts.msgTimeout,
		StateDir:           opts.stateDir,
		Recorder:           in.rec,
		Obs:                observer,
		SlowWriteThreshold: opts.slowWrite,
	}
	if opts.bestEffort {
		cfg.WriteMode = server.WriteBestEffort
	}
	if opts.verbose {
		cfg.Logf = log.Printf
	}

	srv, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	in.srv = srv
	if err := srv.AddVolume(core.VolumeID(opts.volume)); err != nil {
		srv.Close()
		return nil, err
	}

	in.seeded, err = seedObjects(srv, core.VolumeID(opts.volume), opts.dir, opts.nObjects)
	if err != nil {
		srv.Close()
		return nil, err
	}
	// Lease-state introspection: /debug/leases, lease_state_* gauges, and a
	// frozen table snapshot in every flight dump. Attached before the health
	// engine starts so no freeze can race the attach.
	stateSrc := srv.StateSource()
	state.Register(in.reg, opts.volume, stateSrc, opts.volLease)
	in.flight.AttachState(stateSrc)
	in.health.Start()
	in.prof.Start()

	if opts.debugAddr != "" {
		routes := []obs.Route{{Path: "/debug/leases", Handler: state.Handler(stateSrc)}}
		if in.aud != nil {
			routes = append(routes, obs.Route{Path: "/debug/audit", Handler: in.aud})
		}
		if in.cost != nil {
			routes = append(routes, obs.Route{Path: "/debug/cost", Handler: cost.Handler(in.cost)})
		}
		if in.prof != nil {
			routes = append(routes, obs.Route{Path: "/debug/profile/ring", Handler: cost.RingHandler(in.prof)})
		}
		if in.spans != nil {
			routes = append(routes, obs.Route{Path: "/debug/spans", Handler: obs.SpansHandler(in.spans)})
		}
		if in.load != nil {
			routes = append(routes, obs.Route{Path: "/debug/load", Handler: in.load.Handler()})
		}
		if in.health != nil {
			routes = append(routes,
				obs.Route{Path: "/debug/health", Handler: health.Handler(in.health)},
				obs.Route{Path: "/debug/flightrecorder", Handler: health.FlightHandler(in.health)})
		}
		in.debug, err = obs.Serve(opts.debugAddr, in.reg, in.ring, routes...)
		if err != nil {
			srv.Close()
			return nil, err
		}
	}
	return in, nil
}

func run() error {
	var opts options
	flag.StringVar(&opts.addr, "addr", "127.0.0.1:7400", "listen address")
	flag.StringVar(&opts.volume, "volume", "vol", "volume id")
	flag.IntVar(&opts.nObjects, "objects", 10, "number of synthetic objects to seed (obj-0 .. obj-N-1)")
	flag.StringVar(&opts.dir, "dir", "", "seed one object per file under this directory instead")
	flag.DurationVar(&opts.objLease, "object-lease", 10*time.Minute, "object lease duration (paper's t)")
	flag.DurationVar(&opts.volLease, "volume-lease", 30*time.Second, "volume lease duration (paper's t_v)")
	flag.StringVar(&opts.mode, "mode", "eager", "invalidation mode: eager or delayed")
	flag.DurationVar(&opts.discard, "discard", 0, "delayed mode: inactive discard time d (0 = never)")
	flag.DurationVar(&opts.msgTimeout, "msg-timeout", time.Second, "minimum invalidation ack wait")
	flag.BoolVar(&opts.bestEffort, "best-effort", false, "best-effort writes (bounded staleness, minimal write delay)")
	flag.StringVar(&opts.stateDir, "state-dir", "", "persist volume epochs + lease bound here (crash recovery per Section 3.1.2)")
	flag.BoolVar(&opts.verbose, "v", false, "verbose logging")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats reporting interval (0 = off)")
	flag.StringVar(&opts.debugAddr, "debug-addr", "", "serve /metrics, /debug/vars, /debug/pprof and /debug/events on this address (empty = off)")
	flag.IntVar(&opts.traceLen, "trace", 256, "protocol events kept for /debug/events (0 = tracing off)")
	flag.DurationVar(&opts.slowWrite, "slow-write", 0, "log writes whose invalidation wait reaches this (0 = off)")
	flag.BoolVar(&opts.audit, "audit", false, "run the online consistency auditor (exports lease_audit_* metrics and /debug/audit)")
	flag.IntVar(&opts.spans, "spans", 0, "causal write-path spans kept for /debug/spans (0 = span tracing off)")
	flag.IntVar(&opts.spanSample, "span-sample", 1, "record 1 in N traces (1 = every trace)")
	flag.IntVar(&opts.loadWindow, "load-window", 300, "seconds of per-second load history for /debug/load and lease_load_* (0 = off)")
	flag.IntVar(&opts.flight, "flight", 8192, "protocol events retained by the flight recorder (0 = flight recorder off)")
	flag.DurationVar(&opts.flightWin, "flight-window", time.Minute, "trailing window a flight dump covers")
	flag.StringVar(&opts.flightDir, "flight-dir", "flight-dumps", "directory for flight recorder dump files ($FLIGHT_DUMP_DIR overrides)")
	flag.BoolVar(&opts.cost, "cost", true, "account per-kind wire-path cost (lease_cost_* metrics and /debug/cost)")
	flag.DurationVar(&opts.profEvery, "profile-interval", 0, "capture heap/goroutine profiles into the profile ring this often (0 = off)")
	flag.IntVar(&opts.profRing, "profile-ring", 24, "profile captures retained for /debug/profile/ring")
	flag.DurationVar(&opts.profCPU, "profile-cpu-window", 0, "also capture a CPU profile of this length each cycle (0 = off)")
	flag.BoolVar(&opts.tcpBatch, "tcp-batch", true, "batch outbound TCP frames per connection (one kernel flush per burst; exports lease_batch_*)")
	flag.DurationVar(&opts.dialTimeout, "dial-timeout", 10*time.Second, "TCP dial timeout")
	flag.Parse()

	in, err := start(opts)
	if err != nil {
		return err
	}
	defer in.Close()

	log.Printf("leased: serving volume %q (%d objects, mode=%s, t=%v, tv=%v) on %s",
		in.volLog, in.seeded, in.mode, in.objLog, in.volLeas, in.srv.Addr())
	if in.debug != nil {
		endpoints := "/metrics /debug/vars /debug/pprof /debug/leases"
		if in.ring != nil {
			endpoints += " /debug/events"
		}
		if in.aud != nil {
			endpoints += " /debug/audit"
		}
		if in.spans != nil {
			endpoints += " /debug/spans"
		}
		if in.load != nil {
			endpoints += " /debug/load"
		}
		if in.health != nil {
			endpoints += " /debug/health /debug/flightrecorder"
		}
		if in.cost != nil {
			endpoints += " /debug/cost"
		}
		if in.prof != nil {
			endpoints += " /debug/profile/ring"
		}
		log.Printf("leased: debug server on http://%s (%s)", in.debug.Addr(), endpoints)
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := in.srv.Stats()
				log.Printf("leased: stats %+v", st)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("leased: shutting down")
	if in.aud != nil {
		if err := in.aud.Err(); err != nil {
			// Leave the black box behind: freeze the flight recorder next to
			// the non-zero exit so the violation window can be examined.
			if path, derr := in.health.ForceDump("audit violations at shutdown"); derr == nil {
				log.Printf("leased: wrote flight dump %s", path)
			}
			return err
		}
	}
	return nil
}

// seedObjects populates the volume from a directory (one object per regular
// file, id = relative path) or with synthetic objects.
func seedObjects(srv *server.Server, vid core.VolumeID, dir string, n int) (int, error) {
	if dir == "" {
		for i := 0; i < n; i++ {
			id := core.ObjectID(fmt.Sprintf("obj-%d", i))
			data := []byte(fmt.Sprintf("object %d, version 1", i))
			if err := srv.AddObject(vid, id, data); err != nil {
				return 0, err
			}
		}
		return n, nil
	}
	count := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := srv.AddObject(vid, core.ObjectID(rel), data); err != nil {
			return err
		}
		count++
		return nil
	})
	return count, err
}
