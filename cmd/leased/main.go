// Command leased runs a networked volume-lease server over TCP, serving the
// protocol of Figures 2-4. Objects are seeded from the -seed flag or a
// directory tree; writes arrive from clients via the WriteReq RPC.
//
// Usage:
//
//	leased -addr :7400 -volume site -objects 100
//	leased -addr :7400 -volume docs -dir ./content      # one object per file
//
// Flags select the consistency mode: -mode eager (basic volume leases) or
// -mode delayed (delayed invalidations, with -discard for the paper's d).
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leased:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7400", "listen address")
	volume := flag.String("volume", "vol", "volume id")
	nObjects := flag.Int("objects", 10, "number of synthetic objects to seed (obj-0 .. obj-N-1)")
	dir := flag.String("dir", "", "seed one object per file under this directory instead")
	objLease := flag.Duration("object-lease", 10*time.Minute, "object lease duration (paper's t)")
	volLease := flag.Duration("volume-lease", 30*time.Second, "volume lease duration (paper's t_v)")
	mode := flag.String("mode", "eager", "invalidation mode: eager or delayed")
	discard := flag.Duration("discard", 0, "delayed mode: inactive discard time d (0 = never)")
	msgTimeout := flag.Duration("msg-timeout", time.Second, "minimum invalidation ack wait")
	bestEffort := flag.Bool("best-effort", false, "best-effort writes (bounded staleness, minimal write delay)")
	stateDir := flag.String("state-dir", "", "persist volume epochs + lease bound here (crash recovery per Section 3.1.2)")
	verbose := flag.Bool("v", false, "verbose logging")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats reporting interval (0 = off)")
	flag.Parse()

	tableCfg := core.Config{
		ObjectLease:     *objLease,
		VolumeLease:     *volLease,
		Mode:            core.ModeEager,
		InactiveDiscard: *discard,
	}
	switch *mode {
	case "eager":
	case "delayed":
		tableCfg.Mode = core.ModeDelayed
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	cfg := server.Config{
		Name:       *volume,
		Addr:       *addr,
		Net:        transport.TCP{},
		Table:      tableCfg,
		MsgTimeout: *msgTimeout,
		StateDir:   *stateDir,
	}
	if *bestEffort {
		cfg.WriteMode = server.WriteBestEffort
	}
	if *verbose {
		cfg.Logf = log.Printf
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	if err := srv.AddVolume(core.VolumeID(*volume)); err != nil {
		return err
	}

	count, err := seedObjects(srv, core.VolumeID(*volume), *dir, *nObjects)
	if err != nil {
		return err
	}
	log.Printf("leased: serving volume %q (%d objects, mode=%s, t=%v, tv=%v) on %s",
		*volume, count, tableCfg.Mode, *objLease, *volLease, srv.Addr())

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := srv.Stats()
				log.Printf("leased: stats %+v", st)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("leased: shutting down")
	return nil
}

// seedObjects populates the volume from a directory (one object per regular
// file, id = relative path) or with synthetic objects.
func seedObjects(srv *server.Server, vid core.VolumeID, dir string, n int) (int, error) {
	if dir == "" {
		for i := 0; i < n; i++ {
			id := core.ObjectID(fmt.Sprintf("obj-%d", i))
			data := []byte(fmt.Sprintf("object %d, version 1", i))
			if err := srv.AddObject(vid, id, data); err != nil {
				return 0, err
			}
		}
		return n, nil
	}
	count := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := srv.AddObject(vid, core.ObjectID(rel), data); err != nil {
			return err
		}
		count++
		return nil
	})
	return count, err
}
