package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/transport"
)

// TestDebugEndpointsUnderWorkload starts a fully wired daemon (TCP lease
// server + debug HTTP server), drives it with a scripted client workload,
// and asserts that the scraped /metrics and /debug/vars reflect the
// protocol activity: lease grants, invalidations, write-ack waits, and the
// wire accounting of the metrics.Recorder.
func TestDebugEndpointsUnderWorkload(t *testing.T) {
	in, err := start(options{
		addr:       "127.0.0.1:0",
		volume:     "itest",
		nObjects:   8,
		objLease:   time.Minute,
		volLease:   10 * time.Second,
		mode:       "eager",
		msgTimeout: 200 * time.Millisecond,
		debugAddr:  "127.0.0.1:0",
		traceLen:   128,
		slowWrite:  time.Nanosecond, // every blocking write counts as slow
	})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	// Scripted workload over real TCP: two readers cache an object, then a
	// writer updates it, forcing an invalidate/ack round.
	readers := make([]*client.Client, 2)
	for i := range readers {
		cl, err := client.Dial(transport.TCP{}, in.srv.Addr(), client.Config{
			ID: core.ClientID(fmt.Sprintf("reader-%d", i)),
		})
		if err != nil {
			t.Fatalf("dial reader %d: %v", i, err)
		}
		defer cl.Close()
		readers[i] = cl
		for j := 0; j < 4; j++ {
			if _, err := cl.Read("itest", "obj-1"); err != nil {
				t.Fatalf("reader %d read %d: %v", i, j, err)
			}
		}
	}
	writer, err := client.Dial(transport.TCP{}, in.srv.Addr(), client.Config{ID: "writer"})
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	if _, _, err := writer.Write("obj-1", []byte("new contents")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Re-read after the invalidation so a server round trip is recorded.
	if _, err := readers[0].Read("itest", "obj-1"); err != nil {
		t.Fatalf("post-write read: %v", err)
	}

	base := "http://" + in.debug.Addr()

	prom := httpGet(t, base+"/metrics")
	wantSeries := []string{
		`lease_obj_grants_total{server="itest"}`,
		`lease_vol_grants_total{server="itest"}`,
		`lease_invalidations_sent_total{server="itest"}`,
		`lease_invalidation_acks_total{server="itest"}`,
		`lease_server_writes_total{server="itest"}`,
		`lease_write_ack_wait_seconds_count{server="itest"`,
		`lease_wire_messages_total`,
		`lease_transport_messages_total`,
	}
	for _, s := range wantSeries {
		if !strings.Contains(prom, s) {
			t.Errorf("/metrics missing series %q", s)
		}
	}

	vars := map[string]any{}
	if err := json.Unmarshal([]byte(httpGet(t, base+"/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	atLeast := func(name string, min float64) {
		t.Helper()
		v, ok := vars[name].(float64)
		if !ok {
			t.Errorf("/debug/vars missing %q", name)
			return
		}
		if v < min {
			t.Errorf("%s = %v, want >= %v", name, v, min)
		}
	}
	// Two readers fetched obj-1 plus one post-write refetch: >= 3 object
	// grants. Each reader took a volume lease; the writer's invalidation
	// round reached both readers and both acked.
	atLeast(`lease_obj_grants_total{server="itest"}`, 3)
	atLeast(`lease_vol_grants_total{server="itest"}`, 2)
	atLeast(`lease_invalidations_sent_total{server="itest"}`, 2)
	atLeast(`lease_invalidation_acks_total{server="itest"}`, 2)
	atLeast(`lease_server_writes_total{server="itest"}`, 1)
	atLeast(`lease_slow_writes_total{server="itest"}`, 1)
	atLeast(`lease_server_connections{server="itest"}`, 3)

	// The registry's view of the Recorder must agree with the Recorder
	// itself (no drift between the two accounting paths).
	totals := in.rec.Totals()
	if got := vars["lease_wire_messages_total"].(float64); got != float64(totals.Messages) {
		t.Errorf("lease_wire_messages_total = %v, Recorder says %d", got, totals.Messages)
	}
	if totals.Messages == 0 {
		t.Error("Recorder observed no messages")
	}

	// Ack-wait histogram recorded the write's wait.
	hist, ok := vars[`lease_write_ack_wait_seconds{server="itest"}`].(map[string]any)
	if !ok {
		t.Fatalf("missing ack-wait histogram in /debug/vars")
	}
	if c := hist["count"].(float64); c < 1 {
		t.Errorf("ack-wait histogram count = %v, want >= 1", c)
	}

	// Protocol events made it to the ring.
	events := httpGet(t, base+"/debug/events")
	for _, ev := range []string{"obj-lease-grant", "vol-lease-grant", "inval-sent", "inval-acked", "write-unblocked"} {
		if !strings.Contains(events, ev) {
			t.Errorf("/debug/events missing %q event", ev)
		}
	}

	// pprof index answers.
	if body := httpGet(t, base+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index looks wrong")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(body)
}

// TestTraceEndpointsUnderWorkload enables span tracing and the load
// timeline, drives a traced write over TCP, and checks the two new debug
// endpoints: /debug/spans must return the write's causal chain (client
// span -> server root -> serialize/fanout/ack-wait children), /debug/load
// the post-write message burst.
func TestTraceEndpointsUnderWorkload(t *testing.T) {
	in, err := start(options{
		addr:       "127.0.0.1:0",
		volume:     "ttest",
		nObjects:   4,
		objLease:   time.Minute,
		volLease:   10 * time.Second,
		mode:       "eager",
		msgTimeout: 200 * time.Millisecond,
		debugAddr:  "127.0.0.1:0",
		traceLen:   128,
		spans:      256,
		spanSample: 1,
		loadWindow: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	reader, err := client.Dial(transport.TCP{}, in.srv.Addr(), client.Config{
		ID: "t-reader", Obs: nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	if _, err := reader.Read("ttest", "obj-1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := in.srv.Write("obj-1", []byte("traced contents")); err != nil {
		t.Fatal(err)
	}

	base := "http://" + in.debug.Addr()

	// /debug/spans returns JSON lines; the write must appear as a root
	// "write" span with serialize/fanout/ack-wait children.
	body := httpGet(t, base+"/debug/spans")
	kinds := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" {
			continue
		}
		var span struct {
			Kind   string `json:"kind"`
			Trace  uint64 `json:"trace"`
			Parent uint64 `json:"parent,omitempty"`
		}
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		kinds[span.Kind]++
	}
	for _, k := range []string{"write", "serialize-wait", "fanout", "ack-wait"} {
		if kinds[k] == 0 {
			t.Errorf("/debug/spans missing %q span (got %v)", k, kinds)
		}
	}
	// The ?type= filter narrows to one kind.
	filtered := httpGet(t, base+"/debug/spans?type=write")
	for _, line := range strings.Split(strings.TrimSpace(filtered), "\n") {
		if line != "" && !strings.Contains(line, `"kind":"write"`) {
			t.Errorf("?type=write returned %q", line)
		}
	}

	// /debug/load shows the burst: at least one busy second, messages of
	// several wire kinds, and the committed write.
	var dump struct {
		Node    string `json:"node"`
		Seconds []struct {
			Msgs   int64 `json:"msgs"`
			Writes int64 `json:"writes"`
		} `json:"seconds"`
		Burst struct {
			Peak int64 `json:"peak_mps"`
		} `json:"burst"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, base+"/debug/load")), &dump); err != nil {
		t.Fatalf("/debug/load is not JSON: %v", err)
	}
	if dump.Node != "ttest" || len(dump.Seconds) == 0 || dump.Burst.Peak == 0 {
		t.Errorf("/debug/load dump = %+v", dump)
	}
	var writes int64
	for _, s := range dump.Seconds {
		writes += s.Writes
	}
	if writes < 1 {
		t.Errorf("load timeline recorded %d writes, want >= 1", writes)
	}

	// The lease_load_* gauges ride the normal metrics endpoints.
	vars := map[string]any{}
	if err := json.Unmarshal([]byte(httpGet(t, base+"/debug/vars")), &vars); err != nil {
		t.Fatal(err)
	}
	if v, ok := vars[`lease_load_peak_mps{node="ttest"}`].(float64); !ok || v < 1 {
		t.Errorf(`lease_load_peak_mps{node="ttest"} = %v`, vars[`lease_load_peak_mps{node="ttest"}`])
	}
}
