package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/transport"
)

func testServer(t *testing.T) *server.Server {
	t.Helper()
	srv, err := server.New(server.Config{
		Name: "t", Addr: "t:1", Net: transport.NewMemory(),
		Table: core.Config{ObjectLease: time.Minute, VolumeLease: time.Second, Mode: core.ModeEager},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	if err := srv.AddVolume("vol"); err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestSeedObjectsSynthetic(t *testing.T) {
	srv := testServer(t)
	n, err := seedObjects(srv, "vol", "", 5)
	if err != nil || n != 5 {
		t.Fatalf("seedObjects = %d, %v", n, err)
	}
	version, data, err := srv.Read("obj-3")
	if err != nil || version != 1 || len(data) == 0 {
		t.Errorf("Read(obj-3) = v%d %q %v", version, data, err)
	}
}

func TestSeedObjectsFromDirectory(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"index.html":   "<h1>hi</h1>",
		"sub/page.txt": "nested",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	srv := testServer(t)
	n, err := seedObjects(srv, "vol", dir, 0)
	if err != nil || n != 2 {
		t.Fatalf("seedObjects = %d, %v", n, err)
	}
	_, data, err := srv.Read(core.ObjectID(filepath.Join("sub", "page.txt")))
	if err != nil || string(data) != "nested" {
		t.Errorf("Read(sub/page.txt) = %q %v", data, err)
	}
}

func TestSeedObjectsMissingDirectory(t *testing.T) {
	srv := testServer(t)
	if _, err := seedObjects(srv, "vol", "/nonexistent/dir", 0); err == nil {
		t.Fatal("missing directory accepted")
	}
}
