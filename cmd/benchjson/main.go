// Command benchjson converts `go test -bench` output on stdin into the
// machine-readable benchmark snapshot documented in EXPERIMENTS.md:
//
//	go test -run '^$' -bench=. -benchmem ./... | benchjson > BENCH.json
//
// Each benchmark line becomes one record carrying the package (tracked from
// the interleaved "pkg:" lines), the benchmark name, and the measured
// iterations, ns/op, B/op, and allocs/op. Custom per-op metrics reported via
// testing.B.ReportMetric (e.g. the simulator's "msgs" and "bytes") land in
// the record's "extra" map keyed by their unit.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

type record struct {
	Package     string             `json:"package"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type snapshot struct {
	GeneratedAt string   `json:"generated_at"`
	Benchmarks  []record `json:"benchmarks"`
}

// parseBench parses one benchmark result line: the name, the iteration
// count, then (value, unit) pairs such as "6264065 ns/op" or "40474 msgs".
func parseBench(pkg, line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Package: pkg, Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return record{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsPerOp = int64(val)
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = val
		}
	}
	return r, true
}

func main() {
	out := snapshot{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Benchmarks:  []record{},
	}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		if r, ok := parseBench(pkg, line); ok {
			out.Benchmarks = append(out.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
