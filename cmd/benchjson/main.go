// Command benchjson converts `go test -bench` output on stdin into the
// machine-readable benchmark snapshot documented in EXPERIMENTS.md:
//
//	go test -run '^$' -bench=. -benchmem ./... | benchjson > BENCH.json
//
// Each benchmark line becomes one record carrying the package (tracked from
// the interleaved "pkg:" lines), the benchmark name, and the measured
// iterations, ns/op, B/op, and allocs/op. Custom per-op metrics reported via
// testing.B.ReportMetric (e.g. the simulator's "msgs" and "bytes") land in
// the record's "extra" map keyed by their unit.
//
// The snapshot also records where it came from — git commit (and whether
// the tree was dirty), Go version, GOOS/GOARCH, and GOMAXPROCS — so that
// `benchdiff` can label each side of a comparison. -no-meta suppresses the
// capture for byte-reproducible output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/benchfmt"
)

func run(in io.Reader, out io.Writer, withMeta bool, now time.Time) error {
	recs, err := benchfmt.ParseTestOutput(in)
	if err != nil {
		return err
	}
	s := benchfmt.Snapshot{
		GeneratedAt: benchfmt.Stamp(now),
		Benchmarks:  recs,
	}
	if withMeta {
		s.Meta = benchfmt.CaptureMeta()
	}
	return benchfmt.Write(out, s)
}

func main() {
	noMeta := flag.Bool("no-meta", false, "omit run metadata (git commit, go version, GOMAXPROCS)")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, !*noMeta, time.Now()); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
