package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/benchfmt"
)

// Line-level parsing is covered in internal/benchfmt; here we pin the
// command's plumbing — stdin to snapshot, with and without metadata.

const sampleOutput = `goos: linux
pkg: repro/internal/wire
BenchmarkWirePath/encode/Hello 	 1000000	 120 ns/op	 8 B/op	 1 allocs/op
BenchmarkWirePath/decode/Hello 	  900000	 140 ns/op	16 B/op	 2 allocs/op
PASS
ok  	repro/internal/wire	2.1s
`

func TestRunProducesSnapshotWithMeta(t *testing.T) {
	var buf strings.Builder
	if err := run(strings.NewReader(sampleOutput), &buf, true, time.Unix(1754500000, 0)); err != nil {
		t.Fatal(err)
	}
	var s benchfmt.Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &s); err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks", len(s.Benchmarks))
	}
	if s.Benchmarks[0].Package != "repro/internal/wire" || s.Benchmarks[0].NsPerOp != 120 {
		t.Errorf("record = %+v", s.Benchmarks[0])
	}
	if s.GeneratedAt != "2025-08-06T17:06:40Z" {
		t.Errorf("generated_at = %q", s.GeneratedAt)
	}
	if s.Meta == nil || s.Meta.GoVersion == "" || s.Meta.GOMAXPROCS < 1 {
		t.Errorf("meta missing or incomplete: %+v", s.Meta)
	}
}

func TestRunNoMeta(t *testing.T) {
	var buf strings.Builder
	if err := run(strings.NewReader(sampleOutput), &buf, false, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	var s benchfmt.Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &s); err != nil {
		t.Fatal(err)
	}
	if s.Meta != nil {
		t.Errorf("-no-meta still captured %+v", s.Meta)
	}
}
