package main

import "testing"

func TestParseBenchStandardLine(t *testing.T) {
	r, ok := parseBench("repro/internal/audit",
		"BenchmarkAuditObserve  \t13769095\t        86.60 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Name != "BenchmarkAuditObserve" || r.Iterations != 13769095 ||
		r.NsPerOp != 86.60 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Errorf("parsed %+v", r)
	}
	if r.Extra != nil {
		t.Errorf("unexpected extra metrics: %v", r.Extra)
	}
}

func TestParseBenchCustomMetrics(t *testing.T) {
	r, ok := parseBench("repro",
		"BenchmarkTable1/PollEachRead \t     198\t   6264065 ns/op\t  82583528 bytes\t     40474 msgs\t         0 stale-rate\t 1806905 B/op\t    1173 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.NsPerOp != 6264065 || r.BytesPerOp != 1806905 || r.AllocsPerOp != 1173 {
		t.Errorf("parsed %+v", r)
	}
	if r.Extra["msgs"] != 40474 || r.Extra["bytes"] != 82583528 {
		t.Errorf("extra = %v", r.Extra)
	}
}

func TestParseBenchRejectsNonBenchLines(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t2.777s",
		"BenchmarkBroken notanumber 5 ns/op",
		"",
	} {
		if _, ok := parseBench("p", line); ok {
			t.Errorf("line %q wrongly parsed as a benchmark", line)
		}
	}
}
