package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/obs"
)

// liveNode stands up one debug endpoint the way a daemon does: a registry,
// a flight recorder, a health engine, and obs.Serve with the health routes
// mounted.
func liveNode(t *testing.T, name string, detectors ...health.Detector) (string, *health.Engine) {
	t.Helper()
	reg := obs.NewRegistry()
	f := health.NewFlightRecorder(name, 1024, time.Minute)
	e := health.NewEngine(health.Options{
		Node:          name,
		Flight:        f,
		DumpDir:       t.TempDir(),
		Tick:          5 * time.Millisecond,
		Tail:          5 * time.Millisecond,
		StalenessBurn: func() float64 { return 0.5 },
	}, detectors...)
	e.Register(reg)
	f.Observe(obs.Event{Type: obs.EvWriteApplied, At: time.Now(), Node: name, Object: "o", Volume: "v"})
	e.Start()
	t.Cleanup(e.Close)

	srv, err := obs.Serve("127.0.0.1:0", reg, nil,
		obs.Route{Path: "/debug/health", Handler: health.Handler(e)},
		obs.Route{Path: "/debug/flightrecorder", Handler: health.FlightHandler(e)},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr(), e
}

func TestFleetTableFromTwoLiveEndpoints(t *testing.T) {
	// Node "alpha" has a detector that always fires; "beta" is healthy.
	epA, engA := liveNode(t, "alpha",
		health.NewThresholdDetector(health.DetBacklog, 1, func() float64 { return 5 }))
	epB, _ := liveNode(t, "beta")

	// Wait for alpha's engine to trigger and persist a dump.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rep := engA.Snapshot()
		if rep.Status == "firing" && rep.DumpsWritten >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alpha never fired: %+v", rep)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var out, errw bytes.Buffer
	code := run(&out, &errw, []string{epA, epB})
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (firing fleet)\nstdout:\n%s\nstderr:\n%s", code, &out, &errw)
	}
	table := out.String()
	for _, want := range []string{"ENDPOINT", "alpha", "beta", "firing", "ok", health.DetBacklog, epA, epB} {
		if !strings.Contains(table, want) {
			t.Errorf("fleet table missing %q:\n%s", want, table)
		}
	}
	// The SERIES column proves /metrics was scraped: alpha exports
	// lease_health_* series.
	alphaLine := ""
	for _, line := range strings.Split(table, "\n") {
		if strings.Contains(line, "alpha") {
			alphaLine = line
		}
	}
	fields := strings.Fields(alphaLine)
	if len(fields) != 12 || fields[9] == "0" {
		t.Errorf("alpha row did not report scraped lease_ series: %q", alphaLine)
	}
	// Health-only nodes export neither lease_state_* gauges nor
	// lease_cost_* counters: those columns degrade to "-", not zeroes.
	if len(fields) == 12 && (fields[7] != "-" || fields[8] != "-" || fields[10] != "-" || fields[11] != "-") {
		t.Errorf("alpha row invented state or cost values without the series: %q", alphaLine)
	}
	if !strings.Contains(alphaLine, "0.50") {
		t.Errorf("alpha row missing staleness burn 0.50: %q", alphaLine)
	}
}

// costNode serves a minimal debug endpoint whose lease_cost_* counters
// advance on every /metrics scrape, so the second rate sample always sees
// a positive delta.
func costNode(t *testing.T, name string) string {
	t.Helper()
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(health.Report{Node: name, Status: "ok"})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		n := calls.Add(1)
		fmt.Fprintf(w, "lease_cost_messages_total{node=%q,dir=\"sent\"} %d\n", name, n*50)
		fmt.Fprintf(w, "lease_cost_messages_total{node=%q,dir=\"recv\"} %d\n", name, n*50)
		fmt.Fprintf(w, "lease_cost_bytes_total{node=%q,dir=\"sent\"} %d\n", name, n*4096)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestFleetRateColumnsFromCostCounters(t *testing.T) {
	ep := costNode(t, "epsilon")
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-rate-window", "50ms", ep}); code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, &out, &errw)
	}
	var line string
	for _, l := range strings.Split(out.String(), "\n") {
		if strings.Contains(l, "epsilon") {
			line = l
		}
	}
	fields := strings.Fields(line)
	if len(fields) != 12 {
		t.Fatalf("epsilon row has %d columns, want 12: %q", len(fields), line)
	}
	msgs, err := strconv.ParseFloat(fields[10], 64)
	if err != nil || msgs <= 0 {
		t.Errorf("MSGS/S = %q, want a positive rate (err %v)", fields[10], err)
	}
	bytesRate, err := strconv.ParseFloat(fields[11], 64)
	if err != nil || bytesRate <= 0 {
		t.Errorf("BYTES/S = %q, want a positive rate (err %v)", fields[11], err)
	}
}

func TestFetchAndPrettyPrintDump(t *testing.T) {
	ep, eng := liveNode(t, "gamma",
		health.NewThresholdDetector(health.DetBacklog, 1, func() float64 { return 9 }))
	deadline := time.Now().Add(2 * time.Second)
	for eng.Snapshot().DumpsWritten < 1 {
		if time.Now().After(deadline) {
			t.Fatal("gamma never dumped")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// -dumps lists the file.
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-dumps", ep}); code != 0 {
		t.Fatalf("-dumps exit %d: %s", code, &errw)
	}
	if !strings.Contains(out.String(), "flight-gamma-"+health.DetBacklog) {
		t.Fatalf("-dumps listing:\n%s", &out)
	}

	// -dump latest pretty-prints trigger evidence and the timeline.
	out.Reset()
	errw.Reset()
	if code := run(&out, &errw, []string{"-dump", "latest", ep}); code != 0 {
		t.Fatalf("-dump exit %d: %s", code, &errw)
	}
	pretty := out.String()
	for _, want := range []string{
		"node:    gamma",
		"trigger: " + health.DetBacklog,
		"observed 9, threshold 1",
		"write-applied",
		"timeline",
	} {
		if !strings.Contains(pretty, want) {
			t.Errorf("pretty dump missing %q:\n%s", want, pretty)
		}
	}

	// -dump with -raw yields parseable JSON.
	out.Reset()
	errw.Reset()
	if code := run(&out, &errw, []string{"-raw", "-dump", "latest", ep}); code != 0 {
		t.Fatalf("-raw -dump exit %d: %s", code, &errw)
	}
	d, err := health.ParseDump(&out)
	if err != nil {
		t.Fatal(err)
	}
	if d.Node != "gamma" || d.Trigger == nil {
		t.Fatalf("raw dump = %+v", d)
	}
}

func TestFreezeEndpoint(t *testing.T) {
	ep, eng := liveNode(t, "delta")
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-freeze", ep}); code != 0 {
		t.Fatalf("-freeze exit %d: %s", code, &errw)
	}
	if eng.Snapshot().DumpsWritten != 1 {
		t.Fatal("freeze did not write a dump")
	}
	if !strings.Contains(out.String(), "froze flight recorder:") {
		t.Errorf("freeze output: %q", out.String())
	}
}

func TestUnreachableEndpointExitsNonZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-timeout", "200ms", "127.0.0.1:1"}); code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, &errw)
	}
	if !strings.Contains(out.String(), "unreachable") {
		t.Errorf("table missing unreachable row:\n%s", &out)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, nil); code != 1 {
		t.Fatalf("no-args exit = %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "endpoint") {
		t.Errorf("usage message: %q", errw.String())
	}
}
