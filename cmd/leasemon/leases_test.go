package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/state"
	"repro/internal/transport"
)

// stateNode serves a fixed /debug/health report plus lease_state_* gauges,
// the shape a daemon with lease introspection enabled exposes.
func stateNode(t *testing.T, name string) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(health.Report{Node: name, Status: "ok"})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, "lease_state_object_leases{node=%q} 3\n", name)
		fmt.Fprintf(w, "lease_state_volume_leases{node=%q} 2\n", name)
		fmt.Fprintf(w, "lease_state_expiring{node=%q} 1\n", name)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestFleetStateColumnsFromGauges(t *testing.T) {
	ep := stateNode(t, "zeta")
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-rate-window", "0", ep}); code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, &out, &errw)
	}
	var line string
	for _, l := range strings.Split(out.String(), "\n") {
		if strings.Contains(l, "zeta") {
			line = l
		}
	}
	fields := strings.Fields(line)
	if len(fields) != 12 {
		t.Fatalf("zeta row has %d columns, want 12: %q", len(fields), line)
	}
	if fields[7] != "5" { // LEASES = object + volume gauges
		t.Errorf("LEASES = %q, want 5: %q", fields[7], line)
	}
	if fields[8] != "1" { // EXPIRING
		t.Errorf("EXPIRING = %q, want 1: %q", fields[8], line)
	}
}

// leaseEndpoint mounts a state source's /debug/leases on a live debug
// server, the way the daemons do.
func leaseEndpoint(t *testing.T, src *state.Source) string {
	t.Helper()
	dbg, err := obs.Serve("127.0.0.1:0", obs.NewRegistry(), nil,
		obs.Route{Path: "/debug/leases", Handler: state.Handler(src)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dbg.Close() })
	return dbg.Addr()
}

// clientSource wraps one client the way leasebench does: a single-client
// Dump whose Server field names the upstream address.
func clientSource(c *client.Client, node string) *state.Source {
	return state.NewSource(func() state.Dump {
		cs := c.StateSnapshot()
		cs.Server = "srv:1"
		return state.Dump{Role: state.RoleClient, Node: node, TakenAt: cs.TakenAt,
			Clients: []state.ClientSnapshot{cs}}
	})
}

// TestStateDumpSmoke drives the -leases and -diff modes against a live
// server and two clients on simulated clocks: clean while the views agree,
// exit 2 with a holder mismatch once the server's clock runs past expiry
// while a client's stands still (the client keeps trusting leases the
// server has dropped).
func TestStateDumpSmoke(t *testing.T) {
	start := time.Unix(100000, 0)
	srvClock := clock.NewSimulated(start)
	c1Clock := clock.NewSimulated(start)
	c2Clock := clock.NewSimulated(start)

	net := transport.NewMemory()
	srv, err := server.New(server.Config{
		Name: "srv", Addr: "srv:1", Net: net, Clock: srvClock,
		Table:      core.Config{ObjectLease: time.Hour, VolumeLease: time.Hour, Mode: core.ModeEager},
		MsgTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	if err := srv.AddVolume("vol"); err != nil {
		t.Fatal(err)
	}
	for _, o := range []string{"a", "b"} {
		if err := srv.AddObject("vol", core.ObjectID(o), []byte("init-"+o)); err != nil {
			t.Fatal(err)
		}
	}
	dial := func(id string, ck clock.Clock) *client.Client {
		c, err := client.Dial(net, "srv:1", client.Config{
			ID: core.ClientID(id), Skew: 10 * time.Millisecond, Timeout: 5 * time.Second, Clock: ck,
		})
		if err != nil {
			t.Fatalf("Dial(%s): %v", id, err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	c1 := dial("c1", c1Clock)
	c2 := dial("c2", c2Clock)
	for _, rd := range []struct {
		c *client.Client
		o core.ObjectID
	}{{c1, "a"}, {c2, "b"}} {
		if _, err := rd.c.Read("vol", rd.o); err != nil {
			t.Fatalf("Read(%s): %v", rd.o, err)
		}
	}

	epSrv := leaseEndpoint(t, srv.StateSource())
	epC1 := leaseEndpoint(t, clientSource(c1, "bench-1"))
	epC2 := leaseEndpoint(t, clientSource(c2, "bench-2"))

	// Fleet lease table: one row per endpoint, all reachable.
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-leases", epSrv, epC1, epC2}); code != 0 {
		t.Fatalf("-leases exit %d\nstdout:\n%s\nstderr:\n%s", code, &out, &errw)
	}
	table := out.String()
	for _, want := range []string{"srv", "server", "bench-1", "bench-2", "client"} {
		if !strings.Contains(table, want) {
			t.Errorf("lease table missing %q:\n%s", want, table)
		}
	}

	// Quiescent fleet, same clock origin: the diff is clean.
	out.Reset()
	errw.Reset()
	if code := run(&out, &errw, []string{"-diff", epSrv, epC1, epC2}); code != 0 {
		t.Fatalf("clean -diff exit %d\nstdout:\n%s\nstderr:\n%s", code, &out, &errw)
	}
	if !strings.Contains(out.String(), "clean") {
		t.Errorf("clean diff output:\n%s", &out)
	}

	// A client endpoint in the server slot is a usage error.
	out.Reset()
	errw.Reset()
	if code := run(&out, &errw, []string{"-diff", epC1, epSrv}); code != 1 {
		t.Fatalf("client-first -diff exit %d, want 1\n%s", code, &errw)
	}

	// Run the server's clock past every lease while the clients' clocks
	// stand still: the server drops the records, the clients keep trusting
	// them — the unsafe direction the diff must flag.
	srvClock.Advance(2 * time.Hour)
	out.Reset()
	errw.Reset()
	code := run(&out, &errw, []string{"-diff", epSrv, epC1, epC2})
	if code != 2 {
		t.Fatalf("post-expiry -diff exit %d, want 2\nstdout:\n%s\nstderr:\n%s", code, &out, &errw)
	}
	report := out.String()
	if !strings.Contains(report, state.KindHolderMismatch) {
		t.Errorf("diff report missing %s:\n%s", state.KindHolderMismatch, report)
	}
	if !strings.Contains(report, "divergence") {
		t.Errorf("diff report missing divergence count:\n%s", report)
	}
}
