// Command leasemon is the fleet health monitor: it scrapes /debug/health
// and /metrics from a list of lease-stack debug endpoints and renders one
// fleet-wide status table, and it can fetch and pretty-print a flight
// recorder dump from any node.
//
// Usage:
//
//	leasemon host:port [host:port ...]          fleet status table
//	leasemon -leases host:port [host:port ...]  fleet lease-state table (/debug/leases)
//	leasemon -diff server:port [client:port...] server↔client lease divergence check
//	leasemon -dumps host:port                   list flight dumps on one node
//	leasemon -dump latest host:port             fetch + pretty-print the newest dump
//	leasemon -dump flight-....json host:port    fetch + pretty-print one dump
//	leasemon -freeze host:port                  force the node to write a dump
//
// The fleet table's MSGS/S and BYTES/S columns come from two /metrics
// samples of the lease_cost_* counters taken -rate-window apart; nodes
// running with cost accounting disabled show "-". The LEASES and EXPIRING
// columns read the lease_state_* gauges; nodes without lease-state
// introspection show "-".
//
// -diff scrapes /debug/leases from every endpoint — the first must serve a
// server (or proxy) table, the rest contribute client views — and runs the
// internal/state diff engine: holder mismatches, expiry skew beyond ε
// (-epsilon widens the per-client bound), unreachable clients still
// caching, and overdue invalidation acks. The comparison is exact when the
// fleet is quiescent between scrapes; under traffic, transient divergences
// are expected to converge to zero on a re-run.
//
// Endpoints are the debug addresses the daemons expose via -debug-addr.
// The exit status is 0 when every endpoint is healthy (-diff: no
// divergence), 1 on a usage or scrape failure, and 2 when the fleet is
// reachable but some detector is firing (-diff: divergence found) — so
// leasemon drops into cron and CI gates unchanged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/health"
	"repro/internal/state"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(out, errw io.Writer, argv []string) int {
	fs := flag.NewFlagSet("leasemon", flag.ContinueOnError)
	fs.SetOutput(errw)
	timeout := fs.Duration("timeout", 3*time.Second, "per-endpoint scrape timeout")
	rateWin := fs.Duration("rate-window", time.Second,
		"gap between the two /metrics samples behind the MSGS/S and BYTES/S columns (0 = skip rate sampling)")
	dump := fs.String("dump", "", "fetch one dump from the endpoint: a flight-*.json name, or 'latest'")
	dumps := fs.Bool("dumps", false, "list the endpoint's flight dump files")
	freeze := fs.Bool("freeze", false, "force the endpoint to freeze its flight recorder to disk")
	raw := fs.Bool("raw", false, "with -dump: emit the raw JSON instead of the pretty view")
	events := fs.Int("events", 20, "with -dump: how many trailing events to print (0 = all)")
	leases := fs.Bool("leases", false, "render the fleet lease-state table from each endpoint's /debug/leases")
	diff := fs.Bool("diff", false, "diff lease state: first endpoint is the server view, the rest contribute client views")
	epsilon := fs.Duration("epsilon", 0, "with -diff: expiry-skew tolerance added on top of each client's own ε")
	window := fs.Duration("window", state.DefaultExpiringWindow, "with -leases: lookahead for the EXPIRING column")
	if err := fs.Parse(argv); err != nil {
		return 1
	}
	eps := fs.Args()
	if len(eps) == 0 {
		fmt.Fprintln(errw, "leasemon: at least one debug endpoint (host:port) required")
		fs.Usage()
		return 1
	}
	cl := &http.Client{Timeout: *timeout}

	var err error
	switch {
	case *dump != "":
		err = fetchDump(out, cl, eps[0], *dump, *raw, *events)
	case *dumps:
		err = listDumps(out, cl, eps[0])
	case *freeze:
		err = freezeDump(out, cl, eps[0])
	case *leases:
		return leaseTable(out, errw, cl, eps, *window)
	case *diff:
		return diffLeases(out, errw, cl, eps, *epsilon)
	default:
		return fleet(out, errw, cl, eps, *rateWin)
	}
	if err != nil {
		fmt.Fprintln(errw, "leasemon:", err)
		return 1
	}
	return 0
}

// row is one endpoint's scraped state in the fleet table.
type row struct {
	endpoint  string
	report    health.Report
	series    int     // lease_* series on /metrics
	msgs      float64 // lease_net_msgs_total summed over directions, if exported
	hasCost   bool    // node exports lease_cost_* (cost accounting enabled)
	msgsRate  float64 // wire messages/s over the rate window, both directions
	bytesRate float64 // wire bytes/s over the rate window, both directions
	hasState  bool    // node exports lease_state_* (lease introspection enabled)
	leases    float64 // object + volume leases from the lease_state_* gauges
	expiring  float64 // leases expiring within the node's own window
	err       error
}

// fleet scrapes every endpoint concurrently and renders the table.
func fleet(out, errw io.Writer, cl *http.Client, eps []string, rateWin time.Duration) int {
	rows := make([]row, len(eps))
	done := make(chan int, len(eps))
	for i, ep := range eps {
		go func(i int, ep string) {
			rows[i] = scrape(cl, ep, rateWin)
			done <- i
		}(i, ep)
	}
	for range eps {
		<-done
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ENDPOINT\tNODE\tSTATUS\tFIRING\tTRIGGERS\tDUMPS\tBURN\tLEASES\tEXPIRING\tSERIES\tMSGS/S\tBYTES/S")
	exit := 0
	for _, r := range rows {
		if r.err != nil {
			fmt.Fprintf(tw, "%s\t-\tunreachable\t-\t-\t-\t-\t-\t-\t-\t-\t-\n", r.endpoint)
			fmt.Fprintf(errw, "leasemon: %s: %v\n", r.endpoint, r.err)
			exit = 1
			continue
		}
		rep := r.report
		var firing []string
		var triggers int64
		for _, d := range rep.Detectors {
			triggers += d.Triggers
			if d.State == "firing" {
				firing = append(firing, d.Name)
			}
		}
		firingCol := "-"
		if len(firing) > 0 {
			firingCol = strings.Join(firing, ",")
			if exit == 0 {
				exit = 2
			}
		}
		msgsCol, bytesCol := "-", "-"
		if r.hasCost {
			msgsCol = fmt.Sprintf("%.1f", r.msgsRate)
			bytesCol = fmt.Sprintf("%.0f", r.bytesRate)
		}
		leaseCol, expCol := "-", "-"
		if r.hasState {
			leaseCol = fmt.Sprintf("%.0f", r.leases)
			expCol = fmt.Sprintf("%.0f", r.expiring)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%d\t%.2f\t%s\t%s\t%d\t%s\t%s\n",
			r.endpoint, rep.Node, rep.Status, firingCol, triggers, rep.DumpsWritten,
			rep.StalenessBurn, leaseCol, expCol, r.series, msgsCol, bytesCol)
	}
	tw.Flush()
	return exit
}

// scrape pulls one endpoint's /debug/health report and /metrics exposition.
// When the node exports lease_cost_* series and rateWin > 0 it samples
// /metrics a second time after the window and derives message and byte
// rates from the counter deltas.
func scrape(cl *http.Client, ep string, rateWin time.Duration) row {
	r := row{endpoint: ep}
	body, err := get(cl, ep, "/debug/health")
	if err != nil {
		r.err = err
		return r
	}
	if err := json.Unmarshal(body, &r.report); err != nil {
		r.err = fmt.Errorf("/debug/health: %w", err)
		return r
	}
	body, err = get(cl, ep, "/metrics")
	if err != nil {
		r.err = err
		return r
	}
	series := parseProm(body)
	for name, v := range series {
		if strings.HasPrefix(name, "lease_") {
			r.series++
		}
		if strings.HasPrefix(name, "lease_net_msgs_total") {
			r.msgs += v
		}
	}
	obj, haveObj := sumPrefix(series, "lease_state_object_leases")
	vol, haveVol := sumPrefix(series, "lease_state_volume_leases")
	if haveObj || haveVol {
		r.hasState = true
		r.leases = obj + vol
		r.expiring, _ = sumPrefix(series, "lease_state_expiring")
	}
	msgs0, haveMsgs := sumPrefix(series, "lease_cost_messages_total")
	bytes0, haveBytes := sumPrefix(series, "lease_cost_bytes_total")
	if !haveMsgs && !haveBytes {
		return r // cost accounting disabled on this node
	}
	r.hasCost = true
	if rateWin <= 0 {
		return r
	}
	start := time.Now()
	time.Sleep(rateWin)
	body, err = get(cl, ep, "/metrics")
	if err != nil {
		// The node answered once and then went away; keep the health row
		// but drop the rate columns rather than failing the endpoint.
		r.hasCost = false
		return r
	}
	elapsed := time.Since(start).Seconds()
	again := parseProm(body)
	msgs1, _ := sumPrefix(again, "lease_cost_messages_total")
	bytes1, _ := sumPrefix(again, "lease_cost_bytes_total")
	// A counter that shrank means the node restarted between samples.
	r.msgsRate = max(0, msgs1-msgs0) / elapsed
	r.bytesRate = max(0, bytes1-bytes0) / elapsed
	return r
}

// scrapeLeases pulls one endpoint's /debug/leases dump.
func scrapeLeases(cl *http.Client, ep string) (state.Dump, error) {
	body, err := get(cl, ep, "/debug/leases")
	if err != nil {
		return state.Dump{}, err
	}
	var d state.Dump
	if err := json.Unmarshal(body, &d); err != nil {
		return state.Dump{}, fmt.Errorf("/debug/leases: %w", err)
	}
	return d, nil
}

// leaseTable renders one lease-state row per endpoint from /debug/leases.
func leaseTable(out, errw io.Writer, cl *http.Client, eps []string, window time.Duration) int {
	type lrow struct {
		dump state.Dump
		err  error
	}
	rows := make([]lrow, len(eps))
	done := make(chan struct{}, len(eps))
	for i, ep := range eps {
		go func(i int, ep string) {
			rows[i].dump, rows[i].err = scrapeLeases(cl, ep)
			done <- struct{}{}
		}(i, ep)
	}
	for range eps {
		<-done
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ENDPOINT\tNODE\tROLE\tOBJ\tVOL\tEXPIRING\tUNREACH\tCACHED\tPEERS")
	exit := 0
	for i, r := range rows {
		if r.err != nil {
			fmt.Fprintf(tw, "%s\t-\tunreachable\t-\t-\t-\t-\t-\t-\n", eps[i])
			fmt.Fprintf(errw, "leasemon: %s: %v\n", eps[i], r.err)
			exit = 1
			continue
		}
		d := r.dump
		c := state.Count(d, window)
		// PEERS: connections a server is tracking, or cached upstream views
		// a client pool holds.
		peers := len(d.Clients)
		if d.Server != nil {
			peers = len(d.Server.Connected)
		}
		role := d.Role
		if role == "" {
			role = "-"
		}
		node := d.Node
		if node == "" {
			node = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			eps[i], node, role, c.ObjectLeases, c.VolumeLeases, c.Expiring,
			c.Unreachable, c.UnreachableCached, peers)
	}
	tw.Flush()
	return exit
}

// diffLeases scrapes /debug/leases from every endpoint — the first must
// carry a server table; every dump's client views (including the first's,
// so a proxy or an audited bench node self-checks) feed the diff — and
// reports divergences. Exit 0 clean, 1 on scrape/usage failure, 2 on
// divergence.
func diffLeases(out, errw io.Writer, cl *http.Client, eps []string, epsilon time.Duration) int {
	dumps := make([]state.Dump, len(eps))
	for i, ep := range eps {
		d, err := scrapeLeases(cl, ep)
		if err != nil {
			fmt.Fprintf(errw, "leasemon: %s: %v\n", ep, err)
			return 1
		}
		dumps[i] = d
	}
	server := dumps[0]
	if server.Server == nil {
		fmt.Fprintf(errw, "leasemon: %s serves no server-side lease table (role %q); -diff needs a leased or leaseproxy endpoint first\n",
			eps[0], server.Role)
		return 1
	}
	rep := state.Diff(server, dumps, state.Options{Epsilon: epsilon})

	fmt.Fprintf(out, "diff against %s (%s): %d client view(s), %d lease(s) checked, ε=%v\n",
		server.Node, eps[0], rep.ClientsChecked, rep.LeasesChecked, rep.Epsilon)
	if rep.Clean() {
		fmt.Fprintln(out, "clean: server and client lease views agree")
		return 0
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "KIND\tCLIENT\tVOLUME\tOBJECT\tDETAIL")
	for _, dv := range rep.Divergences {
		obj := string(dv.Object)
		if obj == "" {
			obj = "-"
		}
		vol := string(dv.Volume)
		if vol == "" {
			vol = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", dv.Kind, dv.Client, vol, obj, dv.Detail)
	}
	tw.Flush()
	fmt.Fprintf(out, "%d divergence(s)\n", len(rep.Divergences))
	return 2
}

// sumPrefix sums every series whose name starts with prefix and reports
// whether any matched.
func sumPrefix(series map[string]float64, prefix string) (float64, bool) {
	var sum float64
	found := false
	for name, v := range series {
		if strings.HasPrefix(name, prefix) {
			sum += v
			found = true
		}
	}
	return sum, found
}

// parseProm reads Prometheus text exposition into full-series-name → value.
func parseProm(body []byte) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}

func get(cl *http.Client, ep, path string) ([]byte, error) {
	resp, err := cl.Get("http://" + ep + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// listDumps prints one node's dump files.
func listDumps(out io.Writer, cl *http.Client, ep string) error {
	infos, err := dumpList(cl, ep)
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		fmt.Fprintln(out, "no flight dumps")
		return nil
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tBYTES\tMODIFIED")
	for _, in := range infos {
		fmt.Fprintf(tw, "%s\t%d\t%s\n", in.Name, in.Bytes, in.Modified.Format(time.RFC3339))
	}
	return tw.Flush()
}

func dumpList(cl *http.Client, ep string) ([]health.DumpInfo, error) {
	body, err := get(cl, ep, "/debug/flightrecorder?list=1")
	if err != nil {
		return nil, err
	}
	var infos []health.DumpInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		return nil, fmt.Errorf("dump list: %w", err)
	}
	return infos, nil
}

// freezeDump forces the node to write a dump and reports the path.
func freezeDump(out io.Writer, cl *http.Client, ep string) error {
	resp, err := cl.Post("http://"+ep+"/debug/flightrecorder?freeze=1", "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("freeze: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var got struct {
		Path string `json:"path"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		return fmt.Errorf("freeze: %w", err)
	}
	fmt.Fprintln(out, "froze flight recorder:", got.Path)
	return nil
}

// fetchDump retrieves one dump ("latest" resolves against the listing) and
// pretty-prints it.
func fetchDump(out io.Writer, cl *http.Client, ep, name string, raw bool, tail int) error {
	if name == "latest" {
		infos, err := dumpList(cl, ep)
		if err != nil {
			return err
		}
		if len(infos) == 0 {
			return fmt.Errorf("%s has no flight dumps", ep)
		}
		latest := infos[0]
		for _, in := range infos[1:] {
			if in.Modified.After(latest.Modified) || (in.Modified.Equal(latest.Modified) && in.Name > latest.Name) {
				latest = in
			}
		}
		name = latest.Name
	}
	body, err := get(cl, ep, "/debug/flightrecorder?file="+name)
	if err != nil {
		return err
	}
	if raw {
		_, err := out.Write(body)
		return err
	}
	d, err := health.ParseDump(strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	printDump(out, name, d, tail)
	return nil
}

// printDump renders the operator view of one dump: the verdict first, then
// the shape of the window, then the trailing event timeline.
func printDump(out io.Writer, name string, d health.Dump, tail int) {
	fmt.Fprintf(out, "flight dump %s\n", name)
	fmt.Fprintf(out, "  node:    %s\n", d.Node)
	fmt.Fprintf(out, "  written: %s (window %ds)\n", d.WrittenAt.Format(time.RFC3339Nano), d.WindowSeconds)
	if d.Trigger != nil {
		fmt.Fprintf(out, "  trigger: %s at %s\n", d.Trigger, d.Trigger.At.Format(time.RFC3339Nano))
		fmt.Fprintf(out, "  context: %v before the trigger\n", d.PreTriggerSpan())
	} else {
		fmt.Fprintln(out, "  trigger: none (manual freeze)")
	}
	fmt.Fprintf(out, "  held:    %d events, %d spans, %d load seconds, %d metric samples\n",
		len(d.Events), len(d.Spans), len(d.Seconds), len(d.Samples))

	// Events by type, busiest first — the 10,000-ft view of the window.
	byType := map[string]int{}
	for _, e := range d.Events {
		byType[e.Type]++
	}
	types := make([]string, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool {
		if byType[types[i]] != byType[types[j]] {
			return byType[types[i]] > byType[types[j]]
		}
		return types[i] < types[j]
	})
	if len(types) > 0 {
		fmt.Fprintln(out, "\n  events by type:")
		for _, t := range types {
			fmt.Fprintf(out, "    %-24s %d\n", t, byType[t])
		}
	}

	if len(d.Seconds) > 0 {
		fmt.Fprintln(out, "\n  per-second load (last 10):")
		secs := d.Seconds
		if len(secs) > 10 {
			secs = secs[len(secs)-10:]
		}
		for _, s := range secs {
			fmt.Fprintf(out, "    %s  msgs=%-6d writes=%-5d grants=%-5d ack-wait=%v\n",
				time.Unix(s.Unix, 0).UTC().Format("15:04:05"), s.Msgs, s.Writes, s.Grants,
				time.Duration(s.AckWaitNS))
		}
	}

	evs := d.Events
	label := "all"
	if tail > 0 && len(evs) > tail {
		evs = evs[len(evs)-tail:]
		label = fmt.Sprintf("last %d", tail)
	}
	if len(evs) > 0 {
		fmt.Fprintf(out, "\n  timeline (%s of %d):\n", label, len(d.Events))
		for _, e := range evs {
			detail := ""
			for _, part := range []struct{ k, v string }{
				{"client", e.Client}, {"object", e.Object}, {"volume", e.Volume}, {"msg", e.Msg},
			} {
				if part.v != "" {
					detail += " " + part.k + "=" + part.v
				}
			}
			if e.DurNS != 0 {
				detail += " dur=" + time.Duration(e.DurNS).String()
			}
			mark := " "
			if d.Trigger != nil && !e.At.Before(d.Trigger.At) {
				mark = "*" // at or after the trigger
			}
			fmt.Fprintf(out, "  %s %s %-20s%s\n", mark, e.At.Format("15:04:05.000"), e.Type, detail)
		}
		if d.Trigger != nil {
			fmt.Fprintln(out, "  (* = at or after the trigger)")
		}
	}
}
