// Command leaseproxy runs a hierarchical volume-lease cache over TCP: a
// node that holds leases from an upstream leased (or another leaseproxy)
// and grants sub-leases to its own downstream clients, with sub-leases
// capped so they never outlive the upstream leases.
//
// Usage:
//
//	leased -addr :7400 -volume site &
//	leaseproxy -addr :7401 -upstream 127.0.0.1:7400 -volume site
//	leaseproxy -addr :7402 -upstream 127.0.0.1:7401 -volume site   # chainable
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/health"
	"repro/internal/loadtl"
	"repro/internal/obs"
	"repro/internal/proxy"
	"repro/internal/state"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leaseproxy:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7401", "downstream listen address")
	upstream := flag.String("upstream", "127.0.0.1:7400", "upstream server or proxy address")
	id := flag.String("id", "leaseproxy", "identity toward the upstream")
	volume := flag.String("volume", "vol", "volume to proxy")
	objLease := flag.Duration("object-lease", 10*time.Minute, "nominal downstream object sub-lease")
	volLease := flag.Duration("volume-lease", 10*time.Second, "nominal downstream volume sub-lease")
	fence := flag.Duration("startup-fence", 30*time.Second,
		"delay upstream acks this long after boot (set to the upstream volume-lease duration)")
	msgTimeout := flag.Duration("msg-timeout", time.Second, "minimum downstream ack wait")
	verbose := flag.Bool("v", false, "verbose logging")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats reporting interval (0 = off)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/pprof and /debug/events on this address (empty = off)")
	traceLen := flag.Int("trace", 256, "protocol events kept for /debug/events (0 = tracing off)")
	spans := flag.Int("spans", 0, "causal write-path spans kept for /debug/spans (0 = span tracing off)")
	spanSample := flag.Int("span-sample", 1, "record 1 in N traces (1 = every trace)")
	loadWindow := flag.Int("load-window", 300, "seconds of per-second load history for /debug/load and lease_load_* (0 = off)")
	flight := flag.Int("flight", 8192, "protocol events retained by the flight recorder (0 = flight recorder off)")
	flightWin := flag.Duration("flight-window", time.Minute, "trailing window a flight dump covers")
	flightDir := flag.String("flight-dir", "flight-dumps", "directory for flight recorder dump files ($FLIGHT_DUMP_DIR overrides)")
	costOn := flag.Bool("cost", true, "account per-kind wire-path cost (lease_cost_* metrics and /debug/cost)")
	profEvery := flag.Duration("profile-interval", 0, "capture heap/goroutine profiles into the profile ring this often (0 = off)")
	profRing := flag.Int("profile-ring", 24, "profile captures retained for /debug/profile/ring")
	profCPU := flag.Duration("profile-cpu-window", 0, "also capture a CPU profile of this length each cycle (0 = off)")
	tcpBatch := flag.Bool("tcp-batch", true, "batch outbound TCP frames per connection (one kernel flush per burst; exports lease_batch_*)")
	dialTimeout := flag.Duration("dial-timeout", 10*time.Second, "TCP dial timeout")
	flag.Parse()

	reg := obs.NewRegistry()
	observer := &obs.Observer{Metrics: reg}
	var ring *obs.RingSink
	var sinks []obs.Sink
	if *traceLen > 0 {
		ring = obs.NewRingSink(*traceLen)
		sinks = append(sinks, ring)
	}
	var load *loadtl.Timeline
	if *loadWindow > 0 {
		load = loadtl.New(*id, *loadWindow, time.Now)
		load.Register(reg)
		sinks = append(sinks, load)
	}
	var flightRec *health.FlightRecorder
	var engine *health.Engine
	if *flight > 0 {
		flightRec = health.NewFlightRecorder(*id, *flight, *flightWin)
		flightRec.AttachTimeline(load)
		sinks = append(sinks, flightRec)
		// The proxy is a client of its upstream and a server to its
		// downstream: the event-stream rules (renewal storm, unreachable
		// growth, epoch bump, ack-wait p99) cover both roles.
		engine = health.NewEngine(health.Options{
			Node:    *id,
			Flight:  flightRec,
			DumpDir: health.DumpDir(*flightDir),
			Logf:    log.Printf,
		}, health.DefaultDetectors(health.DetectorConfig{})...)
		engine.Register(reg)
		sinks = append(sinks, engine)
	}
	if len(sinks) > 0 {
		observer.Tracer = obs.NewTracer(sinks...)
	}
	var spanRec *obs.SpanRecorder
	if *spans > 0 {
		spanRec = obs.NewSpanRecorder(*spans, *spanSample)
		observer.Spans = spanRec
		flightRec.AttachSpans(spanRec)
	}
	var acct *cost.Accounting
	if *costOn {
		acct = cost.New(*id, time.Now)
		acct.Register(reg)
	}
	var prof *cost.Profiler
	if *profEvery > 0 {
		prof = cost.NewProfiler(cost.ProfilerOptions{
			Node:      *id,
			Clock:     clock.Real{},
			Interval:  *profEvery,
			Ring:      *profRing,
			CPUWindow: *profCPU,
			Logf:      log.Printf,
		})
		flightRec.AttachProfiles(prof)
	}
	// Cost accounting wraps the raw network INNERMOST (frame-level timing on
	// TCP conns); the wire observer counts messages from the outside. Both
	// directions are charged here: upstream renewals and downstream grants.
	batch := &transport.BatchStats{}
	tcp := transport.TCP{DialTimeout: *dialTimeout, Immediate: !*tcpBatch, Stats: batch}
	netw := transport.ObserveNetwork(acct.Network(tcp), obs.WireObserver(observer, *id, time.Now))
	obs.RegisterBatchStats(reg, *id, batch)

	cfg := proxy.Config{
		ID:             core.ClientID(*id),
		Addr:           *addr,
		Net:            netw,
		Upstream:       *upstream,
		Volume:         core.VolumeID(*volume),
		SubObjectLease: *objLease,
		SubVolumeLease: *volLease,
		StartupFence:   *fence,
		MsgTimeout:     *msgTimeout,
		Obs:            observer,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	px, err := proxy.New(cfg)
	if err != nil {
		return err
	}
	defer px.Close()
	// Lease-state introspection: downstream sub-lease table + upstream
	// cached view, frozen into anomaly dumps and served at /debug/leases.
	stateSrc := px.StateSource()
	state.Register(reg, *id, stateSrc, *volLease)
	flightRec.AttachState(stateSrc)
	engine.Start()
	defer engine.Close()
	prof.Start()
	defer prof.Close()
	log.Printf("leaseproxy: serving volume %q on %s (upstream %s, sub-leases t=%v tv=%v)",
		*volume, px.Addr(), *upstream, *objLease, *volLease)

	if *debugAddr != "" {
		routes := []obs.Route{{Path: "/debug/leases", Handler: state.Handler(stateSrc)}}
		if spanRec != nil {
			routes = append(routes, obs.Route{Path: "/debug/spans", Handler: obs.SpansHandler(spanRec)})
		}
		if load != nil {
			routes = append(routes, obs.Route{Path: "/debug/load", Handler: load.Handler()})
		}
		if engine != nil {
			routes = append(routes,
				obs.Route{Path: "/debug/health", Handler: health.Handler(engine)},
				obs.Route{Path: "/debug/flightrecorder", Handler: health.FlightHandler(engine)})
		}
		if acct != nil {
			routes = append(routes, obs.Route{Path: "/debug/cost", Handler: cost.Handler(acct)})
		}
		if prof != nil {
			routes = append(routes, obs.Route{Path: "/debug/profile/ring", Handler: cost.RingHandler(prof)})
		}
		dbg, err := obs.Serve(*debugAddr, reg, ring, routes...)
		if err != nil {
			return err
		}
		defer dbg.Close()
		log.Printf("leaseproxy: debug server on http://%s", dbg.Addr())
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				log.Printf("leaseproxy: stats %+v", px.Stats())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("leaseproxy: shutting down")
	return nil
}
