// Command leasesim runs the trace-driven consistency simulator of Section 4
// over one or more algorithms and reports the paper's metrics: messages,
// bytes, stale reads, per-server state, and peak per-second load.
//
// Usage:
//
//	leasesim -algo 'volume(10,100000)' [-algo ...] [-trace file] [-bu file]
//
// With no -trace/-bu, the built-in default synthetic workload is used.
// Algorithms are written in the paper's notation: pollEachRead, poll(t),
// callback, lease(t), volume(tv,t), delay(tv,t[,d]) with d omitted or
// "inf" for ∞.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload"
)

type algoList []string

func (a *algoList) String() string     { return strings.Join(*a, ",") }
func (a *algoList) Set(v string) error { *a = append(*a, v); return nil }

// simObs is the simulator's optional debug surface: with -debug-addr set,
// a debug HTTP server (/metrics, /debug/vars, /debug/pprof) runs for the
// duration of the simulation — long BU-trace replays can be profiled and
// watched from leasemon like the live daemons — exporting progress as
// lease_sim_algorithms_total and lease_sim_events_total.
type simObs struct {
	dbg    *obs.DebugServer
	algos  *obs.Counter
	events *obs.Counter
}

// newSimObs builds (and serves) the debug surface; a nil *simObs, returned
// for an empty addr, is a valid disabled surface.
func newSimObs(addr string) (*simObs, error) {
	if addr == "" {
		return nil, nil
	}
	reg := obs.NewRegistry()
	s := &simObs{
		algos:  reg.Counter("lease_sim_algorithms_total"),
		events: reg.Counter("lease_sim_events_total"),
	}
	var err error
	s.dbg, err = obs.Serve(addr, reg, nil)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// ran records one completed algorithm over a trace of n events.
func (s *simObs) ran(n int) {
	if s == nil {
		return
	}
	s.algos.Inc()
	s.events.Add(int64(n))
}

// Addr reports the bound debug address ("" when disabled).
func (s *simObs) Addr() string {
	if s == nil {
		return ""
	}
	return s.dbg.Addr()
}

func (s *simObs) Close() {
	if s != nil {
		s.dbg.Close()
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leasesim:", err)
		os.Exit(1)
	}
}

func run() error {
	var algos algoList
	flag.Var(&algos, "algo", "algorithm spec (repeatable), e.g. volume(10,100000)")
	traceFile := flag.String("trace", "", "text-format trace file (default: built-in synthetic workload)")
	buFile := flag.String("bu", "", "Boston University Mosaic trace file (reads only; writes are synthesized)")
	topServers := flag.Int("top", 3, "how many busiest servers to detail")
	classes := flag.Bool("classes", false, "print the per-message-class breakdown")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof during the run (empty = off)")
	flag.Parse()

	so, err := newSimObs(*debugAddr)
	if err != nil {
		return err
	}
	defer so.Close()
	if so != nil {
		fmt.Fprintf(os.Stderr, "leasesim: debug server on http://%s\n", so.Addr())
	}

	if len(algos) == 0 {
		algos = algoList{
			"poll(100000)", "callback", "lease(100000)",
			"volume(10,100000)", "delay(10,100000)",
		}
	}

	w, err := loadWorkload(*traceFile, *buFile)
	if err != nil {
		return err
	}
	st := trace.Summarize(w.Trace)
	fmt.Printf("workload: %d events (%d reads, %d writes), %d clients, %d servers, %d objects, span %v\n\n",
		st.Events, st.Reads, st.Writes, st.Clients, st.Servers, st.Objects, st.Duration)

	fmt.Printf("%-28s %12s %14s %10s %12s %10s\n",
		"algorithm", "messages", "bytes", "stale", "stale-rate", "peak/s")
	for _, spec := range algos {
		s, err := bench.ParseSpec(spec)
		if err != nil {
			return err
		}
		rec, res := bench.Run(w, s)
		so.ran(len(w.Trace))
		tot := rec.Totals()
		reads, stale := rec.ReadStats()
		_ = reads
		peak := 0
		if names := rec.Servers(); len(names) > 0 {
			ss, _ := rec.Server(names[0])
			peak = ss.Load.Peak()
		}
		fmt.Printf("%-28s %12d %14d %10d %11.3f%% %10d\n",
			res.Algorithm, tot.Messages, tot.Bytes, stale, rec.StaleRate()*100, peak)

		if *classes {
			for class := metrics.MsgReadValidate; class <= metrics.MsgData; class++ {
				if n := tot.ByClass[class]; n > 0 {
					fmt.Printf("    class %-18s %d\n", class, n)
				}
			}
		}
		names := rec.Servers()
		if *topServers > 0 {
			n := *topServers
			if n > len(names) {
				n = len(names)
			}
			for i := 0; i < n; i++ {
				ss, _ := rec.Server(names[i])
				fmt.Printf("    server %-24s msgs=%-10d avg-state=%-10.0f peak-load=%d/s\n",
					names[i], ss.Counter.Messages, ss.State.Average(res.End), ss.Load.Peak())
			}
		}
	}
	return nil
}

func loadWorkload(traceFile, buFile string) (bench.Workload, error) {
	switch {
	case traceFile != "" && buFile != "":
		return bench.Workload{}, fmt.Errorf("-trace and -bu are mutually exclusive")
	case traceFile != "":
		f, err := os.Open(traceFile)
		if err != nil {
			return bench.Workload{}, err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return bench.Workload{}, err
		}
		tr.Sort()
		return bench.Workload{Name: traceFile, Trace: tr}, nil
	case buFile != "":
		f, err := os.Open(buFile)
		if err != nil {
			return bench.Workload{}, err
		}
		defer f.Close()
		reads, err := trace.ReadBU(f)
		if err != nil {
			return bench.Workload{}, err
		}
		reads.Sort()
		// Synthesize writes per Section 4.2 over the real reads.
		tr, err := withSyntheticWrites(reads)
		if err != nil {
			return bench.Workload{}, err
		}
		return bench.Workload{Name: buFile, Trace: tr}, nil
	default:
		return bench.DefaultWorkload(bench.ScaleFull), nil
	}
}

// withSyntheticWrites merges Section 4.2's synthetic write workload into a
// real read trace.
func withSyntheticWrites(reads trace.Trace) (trace.Trace, error) {
	writes, err := workload.SynthesizeWrites(reads, workload.DefaultWriteConfig())
	if err != nil {
		return nil, err
	}
	return trace.Merge(reads, writes), nil
}
