package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadWorkloadFromTraceFile(t *testing.T) {
	path := writeFile(t, "w.trace",
		"R 1.0 c1 s1 /a 100\nW 2.0 s1 /a 100\nR 3.0 c1 s1 /a 100\n")
	w, err := loadWorkload(path, "")
	if err != nil {
		t.Fatalf("loadWorkload: %v", err)
	}
	st := trace.Summarize(w.Trace)
	if st.Reads != 2 || st.Writes != 1 {
		t.Errorf("summary = %+v", st)
	}
}

func TestLoadWorkloadFromBUFile(t *testing.T) {
	path := writeFile(t, "bu.log",
		`cs18 790358517.5 1 "http://cs-www.bu.edu/a" 2009 0.5`+"\n"+
			`cs18 790358520.0 1 "http://cs-www.bu.edu/b" 1804 0.3`+"\n")
	w, err := loadWorkload("", path)
	if err != nil {
		t.Fatalf("loadWorkload: %v", err)
	}
	st := trace.Summarize(w.Trace)
	if st.Reads != 2 {
		t.Errorf("reads = %d, want 2", st.Reads)
	}
	// Synthetic writes may or may not land on a 2.5s trace; just check the
	// trace is sorted and valid.
	for i := 1; i < len(w.Trace); i++ {
		if w.Trace[i].Time.Before(w.Trace[i-1].Time) {
			t.Fatal("merged trace unsorted")
		}
	}
}

func TestLoadWorkloadMutuallyExclusive(t *testing.T) {
	if _, err := loadWorkload("a", "b"); err == nil {
		t.Fatal("both -trace and -bu accepted")
	}
}

func TestLoadWorkloadMissingFiles(t *testing.T) {
	if _, err := loadWorkload("/nonexistent/x.trace", ""); err == nil {
		t.Fatal("missing trace file accepted")
	}
	if _, err := loadWorkload("", "/nonexistent/bu.log"); err == nil {
		t.Fatal("missing BU file accepted")
	}
}

func TestLoadWorkloadBadContent(t *testing.T) {
	path := writeFile(t, "bad.trace", "Z nonsense\n")
	if _, err := loadWorkload(path, ""); err == nil {
		t.Fatal("malformed trace accepted")
	}
	bu := writeFile(t, "bad.bu", "no quotes here\n")
	if _, err := loadWorkload("", bu); err == nil {
		t.Fatal("malformed BU trace accepted")
	}
}

func TestSimObsServesCounters(t *testing.T) {
	so, err := newSimObs("127.0.0.1:0")
	if err != nil {
		t.Fatalf("newSimObs: %v", err)
	}
	defer so.Close()
	so.ran(7)
	so.ran(3)
	resp, err := http.Get("http://" + so.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lease_sim_algorithms_total 2", "lease_sim_events_total 10"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestSimObsDisabled(t *testing.T) {
	so, err := newSimObs("")
	if err != nil {
		t.Fatalf("newSimObs: %v", err)
	}
	// All methods must be nil-safe when -debug-addr is unset.
	so.ran(5)
	if so.Addr() != "" {
		t.Errorf("Addr = %q, want empty", so.Addr())
	}
	so.Close()
}

func TestAlgoListFlag(t *testing.T) {
	var a algoList
	if err := a.Set("lease(10)"); err != nil {
		t.Fatal(err)
	}
	if err := a.Set("volume(10,100)"); err != nil {
		t.Fatal(err)
	}
	if a.String() != "lease(10),volume(10,100)" {
		t.Errorf("String = %q", a.String())
	}
}
