// Command leasevet runs the project's static analyzer suite (internal/lint)
// over the lease stack and exits non-zero on any finding. It is the `make
// lint` entry point and runs in CI; see DESIGN.md's "Static analysis"
// section for what each analyzer enforces and why.
//
// Usage:
//
//	leasevet [-list] [-only analyzer[,analyzer]] [-json] [-graph]
//	         [-timing] [-fix-allows] [packages]
//
// Packages default to ./... relative to the current directory. Findings
// print as file:line:col: message (analyzer); -json prints them as a JSON
// array instead (the CI artifact format). A finding is suppressed by
// annotating its line (or the line above) with
//
//	//lint:allow <analyzer> — reason
//
// When the full suite runs (no -only), suppressions that no longer suppress
// anything are themselves reported under the staleallow name, so the escape
// hatch cannot rot; -fix-allows lists just those comments, for removal.
// -graph dumps the interprocedural call graph (one "caller -> callee
// [kind]" line per edge) for debugging the reachability analyzers, and
// -timing reports per-analyzer wall time and finding counts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json output record (stable field names: CI parses it).
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leasevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	dir := fs.String("dir", ".", "directory to resolve package patterns from")
	asJSON := fs.Bool("json", false, "print findings as a JSON array")
	graph := fs.Bool("graph", false, "dump the interprocedural call graph and exit")
	timing := fs.Bool("timing", false, "report per-analyzer wall time and finding counts")
	fixAllows := fs.Bool("fix-allows", false, "list stale //lint:allow comments (suppressing nothing) and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	fullSuite := *only == ""
	if !fullSuite {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var subset []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				subset = append(subset, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(stderr, "leasevet: unknown analyzer %q\n", n)
			return 2
		}
		analyzers = subset
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	// Stale-allow detection needs the full suite: under -only, an allow for
	// a deselected analyzer legitimately suppresses nothing this run.
	res := lint.RunSuite(pkgs, analyzers, lint.SuiteOptions{
		Scoped:      true,
		StaleAllows: fullSuite,
	})

	if *graph {
		if res.Graph == nil {
			res.Graph = lint.BuildGraph(pkgs)
		}
		res.Graph.Dump(stdout)
		return 0
	}
	if *timing {
		for _, t := range res.Timings {
			fmt.Fprintf(stderr, "leasevet: %-12s %8.2fms %4d finding(s)\n",
				t.Name, float64(t.Duration.Microseconds())/1000, t.Findings)
		}
	}
	if *fixAllows {
		n := 0
		for _, d := range res.Diagnostics {
			if d.Analyzer == "staleallow" {
				fmt.Fprintln(stdout, d)
				n++
			}
		}
		if n == 0 {
			fmt.Fprintln(stdout, "no stale //lint:allow comments")
		}
		return 0
	}

	diags := res.Diagnostics
	if *asJSON {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "leasevet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
