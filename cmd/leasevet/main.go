// Command leasevet runs the project's static analyzer suite (internal/lint)
// over the lease stack and exits non-zero on any finding. It is the `make
// lint` entry point and runs in CI; see DESIGN.md's "Static analysis"
// section for what each analyzer enforces and why.
//
// Usage:
//
//	leasevet [-list] [-only analyzer[,analyzer]] [packages]
//
// Packages default to ./... relative to the current directory. Findings
// print as file:line:col: message (analyzer). A finding is suppressed by
// annotating its line (or the line above) with
//
//	//lint:allow <analyzer> — reason
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leasevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	dir := fs.String("dir", ".", "directory to resolve package patterns from")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var subset []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				subset = append(subset, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(stderr, "leasevet: unknown analyzer %q\n", n)
			return 2
		}
		analyzers = subset
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers, true)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "leasevet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
