package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the smoke test `make lint` relies on: the committed
// repository must produce zero findings.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", "../.."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean run printed findings:\n%s", stdout.String())
	}
}

// TestFailsOnViolation builds a throwaway module whose path puts it inside
// clockcheck's scope and plants a wall-clock read; leasevet must exit
// non-zero and name the call.
func TestFailsOnViolation(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module repro/internal/server\n\ngo 1.22\n")
	write("bad.go", `package server

import "time"

func Stamp() time.Time { return time.Now() }
`)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", dir, "."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "time.Now") || !strings.Contains(stdout.String(), "clockcheck") {
		t.Fatalf("finding does not name the violation:\n%s", stdout.String())
	}
}

// TestAllowSuppresses plants the same violation with the escape hatch.
func TestAllowSuppresses(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module repro/internal/server\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package server

import "time"

func Stamp() time.Time {
	//lint:allow clockcheck — test fixture
	return time.Now()
}
`
	if err := os.WriteFile(filepath.Join(dir, "ok.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir, "."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0 (allow must suppress)\nstdout:\n%s", code, stdout.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{
		"clockcheck", "lockorder", "wiresym", "metricreg", "ctxclean",
		"hotalloc", "lockflow", "spawnjoin", "snapshotcopy",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestOnlyFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2 for unknown analyzer", code)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-only", "wiresym", "-dir", "../..", "repro/internal/wire"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// violationModule plants a wall-clock read in a throwaway module scoped as
// repro/internal/server, for exercising output modes on a known finding.
func violationModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module repro/internal/server\n\ngo 1.22\n")
	write("bad.go", `package server

import "time"

func Stamp() time.Time { return time.Now() }
`)
	return dir
}

// TestJSONOutput pins the CI artifact format: findings as a JSON array with
// stable field names, exit 1.
func TestJSONOutput(t *testing.T) {
	dir := violationModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir, "-json", "."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %s", len(findings), stdout.String())
	}
	f := findings[0]
	if f["analyzer"] != "clockcheck" {
		t.Errorf("analyzer = %v, want clockcheck", f["analyzer"])
	}
	for _, key := range []string{"file", "line", "column", "message"} {
		if _, ok := f[key]; !ok {
			t.Errorf("finding missing %q field: %v", key, f)
		}
	}

	// A clean run must still print a valid (empty) array.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-dir", "../..", "-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean repo exit = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	findings = nil
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil || len(findings) != 0 {
		t.Fatalf("clean -json output not an empty array: %v\n%s", err, stdout.String())
	}
}

// TestFixAllows lists stale //lint:allow comments and exits 0 (it is a
// report, not a gate); a repo with no stale allows says so.
func TestFixAllows(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module repro/internal/server\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package server

//lint:allow clockcheck — rotted: nothing below reads the wall clock anymore
func Quiet() {}
`
	if err := os.WriteFile(filepath.Join(dir, "ok.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir, "-fix-allows", "."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "suppresses nothing") {
		t.Errorf("stale allow not listed:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-dir", "../..", "-fix-allows"}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean repo exit = %d, want 0", code)
	}
	if !strings.Contains(stdout.String(), "no stale //lint:allow comments") {
		t.Errorf("clean repo should report no stale allows:\n%s", stdout.String())
	}
}

// TestGraphFlag dumps the call graph: the hot wire path must appear as
// resolved edges.
func TestGraphFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", "../..", "-graph", "repro/internal/wire"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "repro/internal/wire.AppendEncode -> repro/internal/wire.(*encoder).str [call]") {
		t.Errorf("-graph output missing the AppendEncode -> str edge:\n%.2000s", out)
	}
}

// TestTimingFlag reports per-analyzer wall time on stderr without touching
// the findings contract on stdout.
func TestTimingFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", "../..", "-timing"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"hotalloc", "lockflow", "spawnjoin", "snapshotcopy"} {
		if !strings.Contains(stderr.String(), name) {
			t.Errorf("-timing output missing %s:\n%s", name, stderr.String())
		}
	}
	if stdout.Len() != 0 {
		t.Errorf("clean -timing run printed findings:\n%s", stdout.String())
	}
}
