package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the smoke test `make lint` relies on: the committed
// repository must produce zero findings.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", "../.."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean run printed findings:\n%s", stdout.String())
	}
}

// TestFailsOnViolation builds a throwaway module whose path puts it inside
// clockcheck's scope and plants a wall-clock read; leasevet must exit
// non-zero and name the call.
func TestFailsOnViolation(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module repro/internal/server\n\ngo 1.22\n")
	write("bad.go", `package server

import "time"

func Stamp() time.Time { return time.Now() }
`)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", dir, "."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "time.Now") || !strings.Contains(stdout.String(), "clockcheck") {
		t.Fatalf("finding does not name the violation:\n%s", stdout.String())
	}
}

// TestAllowSuppresses plants the same violation with the escape hatch.
func TestAllowSuppresses(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module repro/internal/server\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package server

import "time"

func Stamp() time.Time {
	//lint:allow clockcheck — test fixture
	return time.Now()
}
`
	if err := os.WriteFile(filepath.Join(dir, "ok.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir, "."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0 (allow must suppress)\nstdout:\n%s", code, stdout.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"clockcheck", "lockorder", "wiresym", "metricreg", "ctxclean"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestOnlyFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2 for unknown analyzer", code)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-only", "wiresym", "-dir", "../..", "repro/internal/wire"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}
