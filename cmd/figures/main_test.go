package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/loadtl"
)

func TestEmitFigureWritesTSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations; skipped in -short mode")
	}
	dir := t.TempDir()
	// Figure 6 (state) on the small workload is the cheapest full figure.
	if err := emitFigure(6, bench.ScaleSmall, dir); err != nil {
		t.Fatalf("emitFigure: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6.tsv"))
	if err != nil {
		t.Fatalf("TSV not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < len(bench.Fig5Families())*len(bench.DefaultTimeouts) {
		t.Errorf("TSV has %d rows, want >= %d", len(lines),
			len(bench.Fig5Families())*len(bench.DefaultTimeouts))
	}
	for i, line := range lines {
		if len(strings.Split(line, "\t")) != 3 {
			t.Fatalf("row %d malformed: %q", i, line)
		}
	}
}

func TestEmitFigureUnknownNumber(t *testing.T) {
	if err := emitFigure(3, bench.ScaleSmall, t.TempDir()); err == nil {
		t.Fatal("figure 3 accepted")
	}
}

func TestPrintTable1(t *testing.T) {
	if err := printTable1(); err != nil {
		t.Fatal(err)
	}
}

func TestEmitLive(t *testing.T) {
	dir := t.TempDir()
	dump := loadtl.Dump{
		Node:          "srv-live",
		WindowSeconds: 60,
		Seconds: []loadtl.Second{
			{Unix: 100, Msgs: 9}, {Unix: 101, Msgs: 2},
			{Unix: 102, Msgs: 9}, {Unix: 103, Msgs: 1},
		},
		Burst: loadtl.Burst{WindowSeconds: 60, Peak: 9, Mean: 0.35, BusySeconds: 4, IdleSeconds: 56, Ratio: 25.7},
	}
	raw, err := json.Marshal(dump)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, "dump.json")
	if err := os.WriteFile(src, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := emitLive(src, dir); err != nil {
		t.Fatalf("emitLive: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figlive.tsv"))
	if err != nil {
		t.Fatalf("TSV not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Distinct loads 1, 2, 9 -> cumulative periods 4, 3, 2.
	want := []string{
		"live-srv-live\t1\t4",
		"live-srv-live\t2\t3",
		"live-srv-live\t9\t2",
	}
	if len(lines) != len(want) {
		t.Fatalf("TSV rows = %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("row %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestEmitLiveRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(src, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := emitLive(src, dir); err == nil {
		t.Error("garbage dump accepted")
	}
	// An idle timeline is an explicit error, not an empty file.
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"node":"s","seconds":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := emitLive(empty, dir); err == nil {
		t.Error("idle timeline accepted")
	}
}
