package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestEmitFigureWritesTSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations; skipped in -short mode")
	}
	dir := t.TempDir()
	// Figure 6 (state) on the small workload is the cheapest full figure.
	if err := emitFigure(6, bench.ScaleSmall, dir); err != nil {
		t.Fatalf("emitFigure: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6.tsv"))
	if err != nil {
		t.Fatalf("TSV not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < len(bench.Fig5Families())*len(bench.DefaultTimeouts) {
		t.Errorf("TSV has %d rows, want >= %d", len(lines),
			len(bench.Fig5Families())*len(bench.DefaultTimeouts))
	}
	for i, line := range lines {
		if len(strings.Split(line, "\t")) != 3 {
			t.Fatalf("row %d malformed: %q", i, line)
		}
	}
}

func TestEmitFigureUnknownNumber(t *testing.T) {
	if err := emitFigure(3, bench.ScaleSmall, t.TempDir()); err == nil {
		t.Fatal("figure 3 accepted")
	}
}

func TestPrintTable1(t *testing.T) {
	if err := printTable1(); err != nil {
		t.Fatal(err)
	}
}
