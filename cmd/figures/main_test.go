package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cost"
	"repro/internal/loadtl"
	"repro/internal/metrics"
	"repro/internal/wire"
)

func TestEmitFigureWritesTSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations; skipped in -short mode")
	}
	dir := t.TempDir()
	// Figure 6 (state) on the small workload is the cheapest full figure.
	if err := emitFigure(6, bench.ScaleSmall, dir); err != nil {
		t.Fatalf("emitFigure: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6.tsv"))
	if err != nil {
		t.Fatalf("TSV not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < len(bench.Fig5Families())*len(bench.DefaultTimeouts) {
		t.Errorf("TSV has %d rows, want >= %d", len(lines),
			len(bench.Fig5Families())*len(bench.DefaultTimeouts))
	}
	for i, line := range lines {
		if len(strings.Split(line, "\t")) != 3 {
			t.Fatalf("row %d malformed: %q", i, line)
		}
	}
}

func TestEmitFigureUnknownNumber(t *testing.T) {
	if err := emitFigure(3, bench.ScaleSmall, t.TempDir()); err == nil {
		t.Fatal("figure 3 accepted")
	}
}

func TestPrintTable1(t *testing.T) {
	if err := printTable1(); err != nil {
		t.Fatal(err)
	}
}

func TestEmitLive(t *testing.T) {
	dir := t.TempDir()
	dump := loadtl.Dump{
		Node:          "srv-live",
		WindowSeconds: 60,
		Seconds: []loadtl.Second{
			{Unix: 100, Msgs: 9}, {Unix: 101, Msgs: 2},
			{Unix: 102, Msgs: 9}, {Unix: 103, Msgs: 1},
		},
		Burst: loadtl.Burst{WindowSeconds: 60, Peak: 9, Mean: 0.35, BusySeconds: 4, IdleSeconds: 56, Ratio: 25.7},
	}
	raw, err := json.Marshal(dump)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, "dump.json")
	if err := os.WriteFile(src, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := emitLive(src, dir); err != nil {
		t.Fatalf("emitLive: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figlive.tsv"))
	if err != nil {
		t.Fatalf("TSV not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Distinct loads 1, 2, 9 -> cumulative periods 4, 3, 2.
	want := []string{
		"live-srv-live\t1\t4",
		"live-srv-live\t2\t3",
		"live-srv-live\t9\t2",
	}
	if len(lines) != len(want) {
		t.Fatalf("TSV rows = %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("row %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestKindClassCoversProtocol(t *testing.T) {
	// Every real wire kind maps to a stable lowercase label, and the kinds
	// the simulator models map to its exact MsgClass names.
	for i := 1; i < wire.NumKinds; i++ {
		name := wire.Kind(i).String()
		label := kindClass(name)
		if label == "" || strings.ToLower(label) != label {
			t.Errorf("kind %s -> %q", name, label)
		}
	}
	for kind, want := range map[string]metrics.MsgClass{
		"ReqObjLease":    metrics.MsgObjLeaseReq,
		"ObjLease":       metrics.MsgObjLease,
		"ReqVolLease":    metrics.MsgVolLeaseReq,
		"VolLease":       metrics.MsgVolLease,
		"Invalidate":     metrics.MsgInvalidate,
		"AckInvalidate":  metrics.MsgAckInvalidate,
		"MustRenewAll":   metrics.MsgMustRenewAll,
		"RenewObjLeases": metrics.MsgRenewObjLeases,
		"InvalRenew":     metrics.MsgInvalRenew,
	} {
		if got := kindClass(kind); got != want.String() {
			t.Errorf("kindClass(%s) = %q, want %q", kind, got, want)
		}
	}
}

func TestEmitCost(t *testing.T) {
	dir := t.TempDir()
	dump := cost.Dump{
		Node: "bench",
		Kinds: []cost.KindStat{
			{Kind: "ReqObjLease", FramesSent: 100, FramesRecv: 100},
			{Kind: "ObjLease", FramesSent: 100, FramesRecv: 98},
			{Kind: "Invalidate", FramesSent: 40, FramesRecv: 40},
		},
	}
	raw, err := json.Marshal(dump)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, "cost.json")
	if err := os.WriteFile(src, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := emitCost(src, dir); err != nil {
		t.Fatalf("emitCost: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figcost.tsv"))
	if err != nil {
		t.Fatalf("TSV not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Messages() = max(sent, recv): the lost grant still counts as 100.
	want := []string{
		"obj-lease-req\t0\t100",
		"obj-lease\t1\t100",
		"invalidate\t2\t40",
	}
	if len(lines) != len(want) {
		t.Fatalf("TSV rows = %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("row %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestEmitCostRejectsGarbageAndIdle(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(src, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := emitCost(src, dir); err == nil {
		t.Error("garbage dump accepted")
	}
	idle := filepath.Join(dir, "idle.json")
	if err := os.WriteFile(idle, []byte(`{"node":"s","totals":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := emitCost(idle, dir); err == nil {
		t.Error("idle cost dump accepted")
	}
}

func TestEmitLiveRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(src, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := emitLive(src, dir); err == nil {
		t.Error("garbage dump accepted")
	}
	// An idle timeline is an explicit error, not an empty file.
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"node":"s","seconds":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := emitLive(empty, dir); err == nil {
		t.Error("idle timeline accepted")
	}
}
