// Command figures regenerates every figure and table of the paper's
// evaluation (Section 5) and writes the data series as TSV files plus a
// summary to stdout.
//
// Usage:
//
//	figures [-fig N | -all] [-out dir] [-scale small|full]
//
//	figures -all -out results/      # everything the paper reports
//	figures -fig 5                  # just Figure 5's series
//	figures -table1                 # Table 1's analytic cost model
//	figures -callouts               # Section 5.1's headline percentages
//
// -live renders a RUNNING node's load timeline instead of the simulator: it
// reads a /debug/load dump (URL or file saved from one) and emits the same
// cumulative 1s-period load histogram the simulator produces for Figures
// 8/9, so live and simulated burst curves are directly comparable:
//
//	figures -live http://127.0.0.1:7401/debug/load -out results/
//	figures -live dump.json
//
// -cost does the same for the wire-path cost accounting: it reads a
// /debug/cost dump (URL, or a file saved from one — e.g. `leasebench
// -cost-out`) and emits figcost.tsv, per-kind live message counts labelled
// with the simulator's message-class names so the live protocol mix lines
// up against the Figure 5-7 message accounting:
//
//	figures -cost http://127.0.0.1:7401/debug/cost
//	figures -cost cost.json -out results/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/cost"
	"repro/internal/loadtl"
	"repro/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.Int("fig", 0, "figure number to regenerate (5-9)")
	all := flag.Bool("all", false, "regenerate every figure and table")
	table1 := flag.Bool("table1", false, "print Table 1's analytic model")
	callouts := flag.Bool("callouts", false, "print Section 5.1's headline comparisons")
	ablations := flag.Bool("ablations", false, "run the DESIGN.md ablation sweeps (d, t_v, locality)")
	outDir := flag.String("out", ".", "directory for TSV output")
	scaleName := flag.String("scale", "small", "workload scale: small or full")
	live := flag.String("live", "", "render a live /debug/load dump (URL or file) as a cumulative load histogram instead of simulating")
	costSrc := flag.String("cost", "", "render a live /debug/cost dump (URL or file) as per-kind message counts in the Figure 5-7 TSV shape")
	flag.Parse()

	scale := bench.ScaleSmall
	if *scaleName == "full" {
		scale = bench.ScaleFull
	} else if *scaleName != "small" {
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	if *live != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		return emitLive(*live, *outDir)
	}
	if *costSrc != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		return emitCost(*costSrc, *outDir)
	}
	if !*all && *fig == 0 && !*table1 && !*callouts && !*ablations {
		*all = true
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	if *table1 || *all {
		if err := printTable1(); err != nil {
			return err
		}
	}
	if *callouts || *all {
		if err := printCallouts(scale); err != nil {
			return err
		}
	}
	figs := []int{}
	if *fig != 0 {
		figs = append(figs, *fig)
	}
	if *all {
		figs = []int{5, 6, 7, 8, 9}
	}
	for _, f := range figs {
		if err := emitFigure(f, scale, *outDir); err != nil {
			return err
		}
	}
	if *ablations || *all {
		printAblations(scale)
	}
	return nil
}

// fetchDump loads a loadtl dump from a /debug/load URL or a file holding
// one.
func fetchDump(src string) (loadtl.Dump, error) {
	var (
		raw []byte
		err error
	)
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, herr := http.Get(src)
		if herr != nil {
			return loadtl.Dump{}, herr
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return loadtl.Dump{}, fmt.Errorf("GET %s: %s", src, resp.Status)
		}
		raw, err = io.ReadAll(resp.Body)
	} else {
		raw, err = os.ReadFile(src)
	}
	if err != nil {
		return loadtl.Dump{}, err
	}
	var d loadtl.Dump
	if err := json.Unmarshal(raw, &d); err != nil {
		return loadtl.Dump{}, fmt.Errorf("decode %s: %w (expected a /debug/load dump)", src, err)
	}
	return d, nil
}

// emitLive turns a live load-timeline dump into figlive.tsv, the same
// cumulative 1s-period histogram shape as the simulated Figures 8/9.
func emitLive(src, outDir string) error {
	d, err := fetchDump(src)
	if err != nil {
		return err
	}
	loads, periods := d.Cumulative()
	if len(loads) == 0 {
		return fmt.Errorf("%s: timeline has no busy seconds (drive some traffic first)", src)
	}
	label := "live"
	if d.Node != "" {
		label = "live-" + d.Node
	}
	s := bench.Series{Label: label}
	for i := range loads {
		s.X = append(s.X, float64(loads[i]))
		s.Y = append(s.Y, float64(periods[i]))
	}

	path := filepath.Join(outDir, "figlive.tsv")
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := bench.WriteTSV(out, []bench.Series{s}); err != nil {
		return err
	}

	fmt.Printf("== Live load: cumulative 1s-period histogram for %q -> %s ==\n", d.Node, path)
	fmt.Printf("   window=%ds busy=%d idle=%d peak=%d msg/s mean=%.1f msg/s burst-ratio=%.1f\n",
		d.Burst.WindowSeconds, d.Burst.BusySeconds, d.Burst.IdleSeconds,
		d.Burst.Peak, d.Burst.Mean, d.Burst.Ratio)
	for i := range loads {
		fmt.Printf("   load>=%-6d %d period(s)\n", loads[i], periods[i])
	}
	return nil
}

// kindClass maps a wire kind name from a cost dump onto the simulator's
// message-class label (metrics.MsgClass), so live per-kind counts and the
// simulator's Figure 5-7 message accounting share a vocabulary. Kinds the
// simulator does not model (session setup, client-driven writes) keep a
// kebab-case version of their wire name.
func kindClass(kind string) string {
	switch kind {
	case "ReqObjLease":
		return metrics.MsgObjLeaseReq.String()
	case "ObjLease":
		return metrics.MsgObjLease.String()
	case "ReqVolLease":
		return metrics.MsgVolLeaseReq.String()
	case "VolLease":
		return metrics.MsgVolLease.String()
	case "Invalidate":
		return metrics.MsgInvalidate.String()
	case "AckInvalidate":
		return metrics.MsgAckInvalidate.String()
	case "MustRenewAll":
		return metrics.MsgMustRenewAll.String()
	case "RenewObjLeases":
		return metrics.MsgRenewObjLeases.String()
	case "InvalRenew":
		return metrics.MsgInvalRenew.String()
	case "Hello":
		return "hello"
	case "WriteReq":
		return "write-req"
	case "WriteReply":
		return "write-reply"
	case "Error":
		return "error"
	default:
		return strings.ToLower(kind)
	}
}

// fetchCostDump loads a cost dump from a /debug/cost URL or a file holding
// one (e.g. written by `leasebench -cost-out`).
func fetchCostDump(src string) (cost.Dump, error) {
	var (
		raw []byte
		err error
	)
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, herr := http.Get(src)
		if herr != nil {
			return cost.Dump{}, herr
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return cost.Dump{}, fmt.Errorf("GET %s: %s", src, resp.Status)
		}
		raw, err = io.ReadAll(resp.Body)
	} else {
		raw, err = os.ReadFile(src)
	}
	if err != nil {
		return cost.Dump{}, err
	}
	var d cost.Dump
	if err := json.Unmarshal(raw, &d); err != nil {
		return cost.Dump{}, fmt.Errorf("decode %s: %w (expected a /debug/cost dump)", src, err)
	}
	return d, nil
}

// emitCost turns a live cost dump into figcost.tsv: one row per message
// class, y = live message count — the per-kind counterpart of the
// simulator's Figure 5-7 message totals.
func emitCost(src, outDir string) error {
	d, err := fetchCostDump(src)
	if err != nil {
		return err
	}
	if len(d.Kinds) == 0 {
		return fmt.Errorf("%s: cost dump has no per-kind traffic (drive some load first)", src)
	}
	series := make([]bench.Series, 0, len(d.Kinds))
	var total int64
	for i, k := range d.Kinds {
		series = append(series, bench.Series{
			Label: kindClass(k.Kind),
			X:     []float64{float64(i)},
			Y:     []float64{float64(k.Messages())},
		})
		total += k.Messages()
	}

	path := filepath.Join(outDir, "figcost.tsv")
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := bench.WriteTSV(out, series); err != nil {
		return err
	}

	fmt.Printf("== Live cost: per-kind message counts for %q -> %s ==\n", d.Node, path)
	fmt.Printf("   window %s .. %s, %d messages total\n",
		d.StartedAt.Format("15:04:05"), d.CapturedAt.Format("15:04:05"), total)
	for _, s := range series {
		fmt.Printf("   %-18s %10.0f msgs (%.1f%%)\n", s.Label, s.Y[0], 100*s.Y[0]/float64(total))
	}
	return nil
}

func printAblations(scale bench.Scale) {
	w := bench.DefaultWorkload(scale)

	fmt.Println("== Ablation: Delay discard time d (tv=10, t=1e6) ==")
	fmt.Println("   (the trade-off the paper describes but does not quantify)")
	for _, p := range bench.DSweep(w, 10, 1e6, bench.DefaultDSweep) {
		d := fmt.Sprintf("%gs", p.D)
		if p.D > 1e17 {
			d = "inf"
		}
		fmt.Printf("   d=%-8s msgs=%-9d avg-state=%-8.0fB reconnections=%d"+"\n",
			d, p.Messages, p.AvgStateBytes, p.Reconnects)
	}
	fmt.Println()

	fmt.Println("== Ablation: volume lease length tv (t=1e6) ==")
	fmt.Println("   (message overhead vs the min(t,tv) write-delay bound; Lease = tv->inf)")
	for _, p := range bench.TVSweep(w, 1e6, bench.DefaultTVSweep) {
		tv := fmt.Sprintf("%gs", p.TV)
		if p.TV > 1e17 {
			tv = "inf (Lease)"
		}
		fmt.Printf("   tv=%-12s msgs=%-9d volume-renewals=%d"+"\n", tv, p.Messages, p.VolumeRenewals)
	}
	fmt.Println()

	fmt.Println("== Ablation: volume grouping (the paper's future work) ==")
	fmt.Println("   (Volume(10,1e6) with each server fragmented into n hash volumes)")
	for _, p := range bench.GroupingSweep(w, 10, 1e6, bench.DefaultGroupingSweep) {
		fmt.Printf("   volumes/server=%-3d msgs=%-9d volume-renewals=%d"+"\n",
			p.VolumesPerServer, p.Messages, p.VolumeRenewals)
	}
	fmt.Println()

	fmt.Println("== Ablation: per-view spatial locality ==")
	fmt.Println("   (Volume(10,1e6) saving over Lease(10) as page views touch more objects)")
	for _, p := range bench.LocalitySweep(bench.DefaultLocalitySweep) {
		fmt.Printf("   objects/view=%-5.1f lease=%-9d volume=%-9d saving=%5.1f%%"+"\n",
			p.ObjectsPerView, p.LeaseMsgs, p.VolumeMsgs, p.Saving*100)
	}
	fmt.Println()
}

func printTable1() error {
	fmt.Println("== Table 1: per-object consistency costs (example parameters) ==")
	fmt.Println("   R=0.01/s (one read per 100s), Ro=0.1/s volume-wide, t=100000s, tv=100s,")
	fmt.Println("   Ctot=50 clients with copies, Co=20 valid object leases, Cv=5 valid volume leases")
	rows := bench.Table1(bench.ModelParams{
		R: 0.01, Ro: 0.1, T: 100000, TV: 100, Ctot: 50, Co: 20, Cv: 5,
	})
	if err := bench.WriteTable1(os.Stdout, rows); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func printCallouts(scale bench.Scale) error {
	w := bench.DefaultWorkload(scale)
	fmt.Println("== Figure 5 callouts: best messages at a fixed write-delay bound ==")
	fmt.Println("   (paper: Volume -32%/-30%, Delay -39%/-40% at 10s/100s bounds)")
	for _, bound := range []float64{10, 100} {
		for _, c := range bench.Callouts(w, bound, bench.DefaultTimeouts) {
			fmt.Printf("   %-36s best=%-24s %8d vs %8d msgs  saving %5.1f%%\n",
				c.Name, c.Best, c.BestMsgs, c.BaselineMsgs, c.Saving*100)
		}
	}
	fmt.Println()
	return nil
}

func emitFigure(f int, scale bench.Scale, outDir string) error {
	var (
		series []bench.Series
		extra  *bench.Series
		desc   string
	)
	switch f {
	case 5:
		s, stale := bench.Fig5(bench.DefaultWorkload(scale), bench.DefaultTimeouts)
		series, extra = s, &stale
		desc = "messages vs object timeout"
	case 6:
		series = bench.FigState(bench.DefaultWorkload(scale), bench.DefaultTimeouts, 0)
		desc = "avg state (bytes) at most popular server vs timeout"
	case 7:
		series = bench.FigState(bench.DefaultWorkload(scale), bench.DefaultTimeouts, 9)
		desc = "avg state (bytes) at 10th most popular server vs timeout"
	case 8:
		series = bench.FigLoad(bench.DefaultWorkload(scale))
		desc = "cumulative 1s-period load histogram, default writes"
	case 9:
		series = bench.FigLoad(bench.BurstyWorkload(scale))
		desc = "cumulative 1s-period load histogram, bursty writes"
	default:
		return fmt.Errorf("unknown figure %d (have 5-9)", f)
	}

	path := filepath.Join(outDir, fmt.Sprintf("fig%d.tsv", f))
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := bench.WriteTSV(out, series); err != nil {
		return err
	}
	if extra != nil {
		if err := bench.WriteTSV(out, []bench.Series{*extra}); err != nil {
			return err
		}
	}

	fmt.Printf("== Figure %d: %s -> %s ==\n", f, desc, path)
	for _, s := range series {
		if len(s.Y) == 0 {
			continue
		}
		fmt.Printf("   %-22s", s.Label)
		for i := range s.Y {
			fmt.Printf(" %10.0f", s.Y[i])
		}
		fmt.Println()
	}
	if extra != nil && len(extra.Y) > 0 {
		fmt.Printf("   %-22s", extra.Label)
		for _, v := range extra.Y {
			fmt.Printf(" %10.4f", v)
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}
