// Command benchdiff compares two benchmark snapshots produced by benchjson
// and fails when the candidate regresses past the configured thresholds —
// the repo's perf-regression gate (`make bench-diff`, and the CI job of the
// same name):
//
//	benchdiff [flags] BASELINE.json CANDIDATE.json
//
// Only benchmarks present in BOTH snapshots are compared, keyed by package
// plus name; benchmarks that appear or disappear are reported but never
// fail the gate (new benchmarks must not need a baseline backfill to land).
// For each common benchmark three dimensions are checked:
//
//   - ns/op may grow by at most -ns-threshold percent,
//   - allocs/op may grow by at most -alloc-threshold percent (a zero
//     baseline allows zero growth: 0 → 1 allocs is always a regression),
//   - B/op may grow by at most -bytes-threshold percent.
//
// Benchmarks whose baseline ns/op is below -min-ns are exempt from the
// ns/op check: at single-digit nanoseconds, scheduler jitter swamps any
// real signal. Per-benchmark overrides via repeatable
// -rule 'NAME=ns:PCT[,alloc:PCT][,bytes:PCT]' (NAME is a substring match
// against "package BenchmarkName", so a rule can scope to one benchmark, a
// family, or a whole package) take precedence over the global thresholds;
// when several rules match, the last one wins.
//
// Exit status: 0 when clean, 1 on usage or unreadable input, 2 when at
// least one benchmark regressed — so CI can distinguish "broken gate" from
// "perf regression".
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/benchfmt"
)

type thresholds struct {
	nsPct    float64
	allocPct float64
	bytesPct float64
}

type rule struct {
	substr string
	th     thresholds
}

type ruleFlag struct {
	rules []rule
	def   *thresholds
}

func (f *ruleFlag) String() string { return fmt.Sprintf("%d rules", len(f.rules)) }

// Set parses 'NAME=ns:PCT[,alloc:PCT][,bytes:PCT]'. Dimensions left out
// keep the global threshold.
func (f *ruleFlag) Set(s string) error {
	name, spec, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("rule %q: want NAME=dim:pct[,dim:pct...]", s)
	}
	r := rule{substr: name, th: *f.def}
	for _, part := range strings.Split(spec, ",") {
		dim, pctStr, ok := strings.Cut(part, ":")
		if !ok {
			return fmt.Errorf("rule %q: bad clause %q", s, part)
		}
		pct, err := strconv.ParseFloat(pctStr, 64)
		if err != nil {
			return fmt.Errorf("rule %q: bad percentage %q", s, pctStr)
		}
		switch dim {
		case "ns":
			r.th.nsPct = pct
		case "alloc":
			r.th.allocPct = pct
		case "bytes":
			r.th.bytesPct = pct
		default:
			return fmt.Errorf("rule %q: unknown dimension %q (want ns, alloc, or bytes)", s, dim)
		}
	}
	f.rules = append(f.rules, r)
	return nil
}

// growthPct is the relative growth of cand over base in percent. A zero
// baseline with a nonzero candidate is infinite growth; zero over zero is
// no growth.
func growthPct(base, cand float64) float64 {
	if base == 0 {
		if cand == 0 {
			return 0
		}
		return 1e18
	}
	return (cand - base) / base * 100
}

type finding struct {
	key  string
	dim  string
	base float64
	cand float64
	pct  float64
	lim  float64
}

func compare(base, cand benchfmt.Snapshot, def thresholds, rules []rule, minNs float64, out *strings.Builder) (regressions []finding, compared int) {
	baseBy := map[string]benchfmt.Record{}
	for _, r := range base.Benchmarks {
		baseBy[r.Key()] = r
	}
	candBy := map[string]benchfmt.Record{}
	keys := []string{}
	for _, r := range cand.Benchmarks {
		candBy[r.Key()] = r
		keys = append(keys, r.Key())
	}
	sort.Strings(keys)

	var onlyBase, onlyCand []string
	for k := range baseBy {
		if _, ok := candBy[k]; !ok {
			onlyBase = append(onlyBase, k)
		}
	}
	for _, k := range keys {
		if _, ok := baseBy[k]; !ok {
			onlyCand = append(onlyCand, k)
		}
	}
	sort.Strings(onlyBase)

	for _, k := range keys {
		b, ok := baseBy[k]
		if !ok {
			continue
		}
		c := candBy[k]
		compared++
		// Rules match the full key ("pkg BenchmarkName"), so a substring can
		// scope to one benchmark, a family, or a whole package.
		th := def
		for _, r := range rules {
			if strings.Contains(k, r.substr) {
				th = r.th
			}
		}
		checks := []struct {
			dim        string
			base, cand float64
			lim        float64
			skip       bool
		}{
			{"ns/op", b.NsPerOp, c.NsPerOp, th.nsPct, b.NsPerOp < minNs},
			{"allocs/op", float64(b.AllocsPerOp), float64(c.AllocsPerOp), th.allocPct, false},
			{"B/op", float64(b.BytesPerOp), float64(c.BytesPerOp), th.bytesPct, false},
		}
		for _, ch := range checks {
			if ch.skip {
				continue
			}
			pct := growthPct(ch.base, ch.cand)
			if pct > ch.lim {
				regressions = append(regressions, finding{
					key: k, dim: ch.dim, base: ch.base, cand: ch.cand, pct: pct, lim: ch.lim,
				})
			}
		}
	}

	fmt.Fprintf(out, "benchdiff: %d common benchmarks compared\n", compared)
	fmt.Fprintf(out, "  baseline:  %s\n", base.Label())
	fmt.Fprintf(out, "  candidate: %s\n", cand.Label())
	if len(onlyBase) > 0 {
		fmt.Fprintf(out, "  only in baseline (ignored): %s\n", strings.Join(onlyBase, ", "))
	}
	if len(onlyCand) > 0 {
		fmt.Fprintf(out, "  only in candidate (ignored): %s\n", strings.Join(onlyCand, ", "))
	}
	for _, f := range regressions {
		if f.base == 0 {
			fmt.Fprintf(out, "REGRESSION %s %s: %.4g -> %.4g (baseline zero, limit +%.1f%%)\n",
				f.key, f.dim, f.base, f.cand, f.lim)
			continue
		}
		fmt.Fprintf(out, "REGRESSION %s %s: %.4g -> %.4g (%+.1f%%, limit +%.1f%%)\n",
			f.key, f.dim, f.base, f.cand, f.pct, f.lim)
	}
	if len(regressions) == 0 {
		fmt.Fprintf(out, "  no regressions\n")
	}
	return regressions, compared
}

func main() {
	def := thresholds{}
	flag.Float64Var(&def.nsPct, "ns-threshold", 25, "max ns/op growth in percent")
	flag.Float64Var(&def.allocPct, "alloc-threshold", 0, "max allocs/op growth in percent")
	flag.Float64Var(&def.bytesPct, "bytes-threshold", 10, "max B/op growth in percent")
	minNs := flag.Float64("min-ns", 10, "skip the ns/op check when the baseline is below this many ns (noise floor)")
	rules := &ruleFlag{def: &def}
	flag.Var(rules, "rule", "per-benchmark override 'NAME=ns:PCT[,alloc:PCT][,bytes:PCT]' (substring match, repeatable)")
	flag.Parse()

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] BASELINE.json CANDIDATE.json")
		os.Exit(1)
	}
	base, err := benchfmt.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	cand, err := benchfmt.ReadFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	var out strings.Builder
	regressions, _ := compare(base, cand, def, rules.rules, *minNs, &out)
	os.Stdout.WriteString(out.String())
	if len(regressions) > 0 {
		os.Exit(2)
	}
}
