package main

import (
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

func snap(recs ...benchfmt.Record) benchfmt.Snapshot {
	return benchfmt.Snapshot{GeneratedAt: "t", Benchmarks: recs}
}

func rec(name string, ns float64, bytes, allocs int64) benchfmt.Record {
	return benchfmt.Record{Package: "p", Name: name, Iterations: 1,
		NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
}

var defTh = thresholds{nsPct: 25, allocPct: 0, bytesPct: 10}

func TestCompareClean(t *testing.T) {
	var out strings.Builder
	regs, n := compare(
		snap(rec("BenchmarkA", 100, 64, 2)),
		snap(rec("BenchmarkA", 110, 64, 2)), // +10% ns, under the 25% limit
		defTh, nil, 10, &out)
	if len(regs) != 0 || n != 1 {
		t.Errorf("regs=%v compared=%d\n%s", regs, n, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("output: %s", out.String())
	}
}

func TestCompareNsRegression(t *testing.T) {
	var out strings.Builder
	regs, _ := compare(
		snap(rec("BenchmarkA", 100, 0, 0)),
		snap(rec("BenchmarkA", 200, 0, 0)),
		defTh, nil, 10, &out)
	if len(regs) != 1 || regs[0].dim != "ns/op" {
		t.Fatalf("regs = %v", regs)
	}
	if !strings.Contains(out.String(), "REGRESSION p BenchmarkA ns/op: 100 -> 200 (+100.0%, limit +25.0%)") {
		t.Errorf("output: %s", out.String())
	}
}

func TestCompareZeroAllocBaselineIsStrict(t *testing.T) {
	// 0 -> 1 allocs/op must fail regardless of percentage thresholds.
	var out strings.Builder
	regs, _ := compare(
		snap(rec("BenchmarkDisabled", 0.5, 0, 0)),
		snap(rec("BenchmarkDisabled", 0.5, 0, 1)),
		defTh, nil, 10, &out)
	if len(regs) != 1 || regs[0].dim != "allocs/op" {
		t.Fatalf("regs = %v", regs)
	}
}

func TestCompareMinNsNoiseFloor(t *testing.T) {
	// A 0.1ns -> 0.4ns swing is scheduler noise, not a regression.
	var out strings.Builder
	regs, _ := compare(
		snap(rec("BenchmarkTiny", 0.1, 0, 0)),
		snap(rec("BenchmarkTiny", 0.4, 0, 0)),
		defTh, nil, 10, &out)
	if len(regs) != 0 {
		t.Errorf("noise-floor benchmark flagged: %v", regs)
	}
}

func TestCompareOnlyOverlap(t *testing.T) {
	// Benchmarks present on only one side are reported but never fail —
	// this is what lets a new BenchmarkWirePath land against a baseline
	// file that predates it.
	var out strings.Builder
	regs, n := compare(
		snap(rec("BenchmarkOld", 100, 0, 0), rec("BenchmarkShared", 100, 0, 0)),
		snap(rec("BenchmarkShared", 100, 0, 0), rec("BenchmarkNew", 1e9, 1<<30, 1<<20)),
		defTh, nil, 10, &out)
	if len(regs) != 0 || n != 1 {
		t.Errorf("regs=%v compared=%d", regs, n)
	}
	if !strings.Contains(out.String(), "only in baseline (ignored): p BenchmarkOld") ||
		!strings.Contains(out.String(), "only in candidate (ignored): p BenchmarkNew") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRuleOverride(t *testing.T) {
	def := defTh
	rf := &ruleFlag{def: &def}
	if err := rf.Set("BenchmarkHot=ns:5,alloc:0"); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	// +10% ns passes globally but violates the 5% rule for BenchmarkHot.
	regs, _ := compare(
		snap(rec("BenchmarkHot/encode", 100, 0, 0), rec("BenchmarkCold", 100, 0, 0)),
		snap(rec("BenchmarkHot/encode", 110, 0, 0), rec("BenchmarkCold", 110, 0, 0)),
		def, rf.rules, 10, &out)
	if len(regs) != 1 || regs[0].key != "p BenchmarkHot/encode" {
		t.Errorf("regs = %v", regs)
	}
}

func TestRuleMatchesPackageQualifiedKey(t *testing.T) {
	// Rules match "package BenchmarkName", so "p Benchmark" scopes a rule to
	// every benchmark of package p without touching other packages.
	def := defTh
	rf := &ruleFlag{def: &def}
	if err := rf.Set("p Benchmark=ns:5"); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	regs, _ := compare(
		snap(rec("BenchmarkSim", 100, 0, 0)),
		snap(rec("BenchmarkSim", 110, 0, 0)),
		def, rf.rules, 10, &out)
	if len(regs) != 1 {
		t.Errorf("package-scoped rule did not apply: regs = %v", regs)
	}
}

func TestRuleParsing(t *testing.T) {
	def := defTh
	rf := &ruleFlag{def: &def}
	for _, bad := range []string{"", "noequals", "=ns:5", "X=ns", "X=ns:abc", "X=frobs:5"} {
		if err := rf.Set(bad); err == nil {
			t.Errorf("rule %q accepted", bad)
		}
	}
	if err := rf.Set("X=bytes:50"); err != nil {
		t.Fatal(err)
	}
	r := rf.rules[len(rf.rules)-1]
	// Unset dimensions keep the global threshold.
	if r.th.bytesPct != 50 || r.th.nsPct != 25 || r.th.allocPct != 0 {
		t.Errorf("rule thresholds = %+v", r.th)
	}
}

func TestCompareAgainstSeedBaseline(t *testing.T) {
	// The acceptance gate: the committed PR4 baseline and the current
	// snapshot must compare clean (the new BenchmarkWirePath entries are
	// candidate-only and therefore ignored). Skips when either file is
	// missing, e.g. in a bare checkout before the snapshot is regenerated.
	base, err := benchfmt.ReadFile("../../BENCH_PR4.json")
	if err != nil {
		t.Skipf("no baseline: %v", err)
	}
	if len(base.Benchmarks) == 0 {
		t.Fatal("seed baseline has no benchmarks")
	}
	var out strings.Builder
	regs, n := compare(base, base, defTh, nil, 10, &out)
	if len(regs) != 0 {
		t.Errorf("self-comparison found regressions: %v", regs)
	}
	if n != len(base.Benchmarks) {
		t.Errorf("compared %d of %d", n, len(base.Benchmarks))
	}
}
