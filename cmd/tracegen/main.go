// Command tracegen generates the synthetic evaluation workloads of Section
// 4.2 and writes them in the text trace format consumed by leasesim.
//
// Usage:
//
//	tracegen [flags] > trace.txt
//
// Examples:
//
//	tracegen                       # default workload (reads + writes)
//	tracegen -bursty               # the Section 5.3 bursty-write variant
//	tracegen -clients 50 -days 60  # bigger population, longer span
//	tracegen -reads-only           # only the read events
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	rc := workload.DefaultReadConfig()
	wc := workload.DefaultWriteConfig()
	bc := workload.DefaultBurstyConfig()

	flag.Int64Var(&rc.Seed, "seed", rc.Seed, "PRNG seed for reads")
	flag.IntVar(&rc.Clients, "clients", rc.Clients, "number of clients")
	flag.IntVar(&rc.Servers, "servers", rc.Servers, "number of servers (volumes)")
	flag.IntVar(&rc.Objects, "objects", rc.Objects, "total objects")
	days := flag.Float64("days", rc.Duration.Hours()/24, "trace span in days")
	flag.Float64Var(&rc.SessionRate, "session-rate", rc.SessionRate, "sessions per client per day")
	flag.Float64Var(&rc.ViewsPerSession, "views", rc.ViewsPerSession, "mean page views per session")
	flag.Float64Var(&rc.EmbeddedPerView, "embedded", rc.EmbeddedPerView, "mean embedded objects per view")
	readsOnly := flag.Bool("reads-only", false, "emit only read events")
	bursty := flag.Bool("bursty", false, "apply the bursty-write transform (Section 5.3)")
	flag.Float64Var(&bc.MeanExtra, "bursty-mean", bc.MeanExtra, "mean extra same-volume writes per write")
	stats := flag.Bool("stats", false, "print workload statistics to stderr")
	flag.Parse()

	rc.Duration = time.Duration(*days * 24 * float64(time.Hour))

	reads, u, err := workload.GenerateReads(rc)
	if err != nil {
		return err
	}
	out := reads
	if !*readsOnly {
		writes, err := workload.SynthesizeWrites(reads, wc)
		if err != nil {
			return err
		}
		if *bursty {
			writes, err = workload.MakeBursty(writes, u, bc)
			if err != nil {
				return err
			}
		}
		out = trace.Merge(reads, writes)
	}
	if *stats {
		st := trace.Summarize(out)
		fmt.Fprintf(os.Stderr,
			"events=%d reads=%d writes=%d clients=%d servers=%d objects=%d span=%v\n",
			st.Events, st.Reads, st.Writes, st.Clients, st.Servers, st.Objects, st.Duration)
	}
	return trace.Write(os.Stdout, out)
}
