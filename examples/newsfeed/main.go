// Newsfeed: a rapidly changing object (a ticker) with many readers,
// demonstrating the paper's headline guarantee — when a reader becomes
// unreachable, the publisher's writes are delayed at most min(t, t_v), the
// volume-lease bound, instead of a full (long) object lease or forever.
// The same scenario is then repeated in best-effort mode, where writes
// never wait longer than a small grace period at the cost of bounded (not
// zero) staleness for the partitioned reader.
//
//	go run ./examples/newsfeed
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/transport"
)

func main() {
	if err := scenario("blocking writes (the paper's semantics)", server.WriteBlocking); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := scenario("best-effort writes (conclusion's extension)", server.WriteBestEffort); err != nil {
		log.Fatal(err)
	}
}

func scenario(title string, mode server.WriteMode) error {
	fmt.Printf("=== %s ===\n", title)
	net := transport.NewMemory()
	srv, err := server.New(server.Config{
		Name: "feed",
		Addr: "feed:1",
		Net:  net,
		Table: core.Config{
			ObjectLease: time.Hour,              // very long object lease
			VolumeLease: 800 * time.Millisecond, // short volume lease bounds write delay
			Mode:        core.ModeEager,
		},
		MsgTimeout:      50 * time.Millisecond,
		WriteMode:       mode,
		BestEffortGrace: 30 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	if err := srv.AddVolume("news"); err != nil {
		return err
	}
	if err := srv.AddObject("news", "ticker", []byte("headline #0")); err != nil {
		return err
	}

	reader, err := client.Dial(net, "feed:1", client.Config{ID: "reader"})
	if err != nil {
		return err
	}
	defer reader.Close()
	if _, err := reader.Read("news", "ticker"); err != nil {
		return err
	}

	// Publishing while the reader is reachable: invalidation round trips
	// complete in microseconds, writes barely wait.
	_, waited, err := srv.Write("ticker", []byte("headline #1"))
	if err != nil {
		return err
	}
	fmt.Printf("write with reachable reader:    waited %v\n", waited)
	if data, err := reader.Read("news", "ticker"); err == nil {
		fmt.Printf("reader sees: %s\n", data)
	}

	// Partition the reader. The object lease is an hour long, but the
	// write only waits for the 800ms volume lease to run out.
	net.Partition("reader", "feed")
	start := time.Now()
	_, waited, err = srv.Write("ticker", []byte("headline #2"))
	if err != nil {
		return err
	}
	fmt.Printf("write with partitioned reader:  waited %v (wall %v; object lease is 1h!)\n",
		waited.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))

	// What the partitioned reader can and cannot do.
	if _, err := reader.Read("news", "ticker"); err != nil {
		fmt.Printf("partitioned reader Read: refused (%T) — never silently stale\n", err)
	} else if mode == server.WriteBestEffort {
		fmt.Println("partitioned reader Read: served within its not-yet-expired leases (bounded staleness)")
	}
	if stale, ok := reader.Peek("ticker"); ok {
		fmt.Printf("partitioned reader Peek: %q (explicitly unvalidated)\n", stale)
	}

	// Heal: the reconnection protocol resynchronizes the reader. In
	// best-effort mode the reader may keep serving the old headline until
	// its volume lease (800ms) runs out — that IS the staleness bound — so
	// wait it out before the final read.
	net.Heal("reader", "feed")
	if mode == server.WriteBestEffort {
		data, _ := reader.Read("news", "ticker")
		fmt.Printf("just after heal, reader sees: %s (stale for at most t_v)\n", data)
		time.Sleep(900 * time.Millisecond)
	}
	data, err := reader.Read("news", "ticker")
	if err != nil {
		return err
	}
	fmt.Printf("after heal, reader sees: %s\n", data)
	return nil
}
