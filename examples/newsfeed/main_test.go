package main

import (
	"testing"

	"repro/internal/server"
)

// TestRun executes both scenarios end to end; examples double as smoke
// tests of the public API.
func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke test skipped in -short mode")
	}
	if err := scenario("blocking", server.WriteBlocking); err != nil {
		t.Fatal(err)
	}
	if err := scenario("best-effort", server.WriteBestEffort); err != nil {
		t.Fatal(err)
	}
}
