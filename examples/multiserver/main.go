// Multiserver: one browser-like cache reading from a fleet of independent
// volume-lease servers through client.Pool — the paper's deployment shape
// (its trace clients touch 1000 servers). Demonstrates per-server failure
// isolation: partitioning one server only affects its volumes, and the
// pool's other connections keep serving strongly consistent reads.
//
//	go run ./examples/multiserver
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/transport"
)

const fleet = 4

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := transport.NewMemory()

	// A fleet of origins, one volume each: news, sports, weather, finance.
	sites := []string{"news", "sports", "weather", "finance"}
	servers := make([]*server.Server, fleet)
	for i, site := range sites {
		srv, err := server.New(server.Config{
			Name: site,
			Addr: site + ":1",
			Net:  net,
			Table: core.Config{
				ObjectLease: time.Minute,
				VolumeLease: 2 * time.Second,
				Mode:        core.ModeEager,
			},
			MsgTimeout: 50 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		if err := srv.AddVolume(core.VolumeID(site)); err != nil {
			return err
		}
		for p := 0; p < 3; p++ {
			oid := core.ObjectID(fmt.Sprintf("/page-%d", p))
			if err := srv.AddObject(core.VolumeID(site), oid,
				[]byte(fmt.Sprintf("%s %s v1", site, oid))); err != nil {
				return err
			}
		}
		servers[i] = srv
	}

	pool, err := client.NewPool(net, client.Config{ID: "browser", Redial: true})
	if err != nil {
		return err
	}
	defer pool.Close()
	for _, site := range sites {
		pool.AddRoute(core.VolumeID(site), site+":1")
	}

	// Browse every site; connections are dialed lazily.
	for _, site := range sites {
		data, err := pool.Read(core.VolumeID(site), "/page-0")
		if err != nil {
			return err
		}
		fmt.Printf("read %-8s -> %s\n", site, data)
	}
	fmt.Printf("pool holds %d server connections\n\n", pool.Connections())

	// Re-reads inside the leases are pure cache hits — zero messages.
	for i := 0; i < 5; i++ {
		if _, err := pool.Read("weather", "/page-0"); err != nil {
			return err
		}
	}

	// One site updates; only its readers are invalidated.
	if _, _, err := servers[0].Write("/page-0", []byte("news /page-0 v2 (BREAKING)")); err != nil {
		return err
	}
	data, _ := pool.Read("news", "/page-0")
	fmt.Printf("after write: news -> %s\n\n", data)

	// Partition the sports origin. Its volume becomes unreadable once the
	// volume lease lapses; every other site is unaffected.
	net.Partition("browser", "sports")
	time.Sleep(2500 * time.Millisecond)
	if _, err := pool.Read("sports", "/page-0"); err != nil {
		fmt.Println("sports partitioned: strongly consistent read refused (as it must be)")
	}
	if stale, ok := pool.Peek("sports", "/page-0"); ok {
		fmt.Printf("sports partitioned: Peek still offers %q\n", stale)
	}
	for _, site := range []string{"news", "weather", "finance"} {
		if _, err := pool.Read(core.VolumeID(site), "/page-0"); err != nil {
			return fmt.Errorf("healthy site %s failed: %w", site, err)
		}
	}
	fmt.Println("news, weather, finance unaffected")

	net.Heal("browser", "sports")
	data, err = pool.Read("sports", "/page-0")
	if err != nil {
		return err
	}
	fmt.Printf("after heal: sports -> %s\n", data)

	local, remote, invals := pool.Stats()
	fmt.Printf("\npool stats: %d cache reads, %d reads with server contact, %d invalidations\n",
		local, remote, invals)
	return nil
}
