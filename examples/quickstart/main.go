// Quickstart: run a volume-lease server and two clients in one process and
// watch the protocol work — cached reads, server-driven invalidation on
// write, and volume-lease renewal.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An in-memory network keeps the example self-contained; swap in
	// transport.TCP{} and a real address for the networked version.
	net := transport.NewMemory()

	srv, err := server.New(server.Config{
		Name: "origin",
		Addr: "origin:1",
		Net:  net,
		Table: core.Config{
			ObjectLease: time.Minute,     // long object leases (the paper's t)
			VolumeLease: 2 * time.Second, // short volume leases (the paper's t_v)
			Mode:        core.ModeEager,
		},
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	// One volume ("site") with a couple of objects, like a small web site.
	if err := srv.AddVolume("site"); err != nil {
		return err
	}
	if err := srv.AddObject("site", "/index.html", []byte("<h1>hello v1</h1>")); err != nil {
		return err
	}
	if err := srv.AddObject("site", "/style.css", []byte("body{}")); err != nil {
		return err
	}

	alice, err := client.Dial(net, "origin:1", client.Config{ID: "alice"})
	if err != nil {
		return err
	}
	defer alice.Close()
	bob, err := client.Dial(net, "origin:1", client.Config{ID: "bob"})
	if err != nil {
		return err
	}
	defer bob.Close()

	// First reads fetch data and acquire both leases (object + volume).
	page, err := alice.Read("site", "/index.html")
	if err != nil {
		return err
	}
	fmt.Printf("alice reads: %s\n", page)
	if _, err := bob.Read("site", "/index.html"); err != nil {
		return err
	}

	// Repeat reads are pure cache hits: no server traffic at all.
	for i := 0; i < 3; i++ {
		if _, err := alice.Read("site", "/index.html"); err != nil {
			return err
		}
	}
	local, remote, _ := alice.Stats()
	fmt.Printf("alice: %d local reads, %d server round trips\n", local, remote)

	// A write: the server invalidates both caches and waits for their
	// acknowledgments before the write completes (strong consistency).
	version, waited, err := srv.Write("/index.html", []byte("<h1>hello v2</h1>"))
	if err != nil {
		return err
	}
	fmt.Printf("server wrote /index.html v%d (waited %v for 2 acks)\n", version, waited)

	page, err = bob.Read("site", "/index.html")
	if err != nil {
		return err
	}
	fmt.Printf("bob reads:   %s\n", page)

	// Wait out the volume lease: the next read transparently renews it
	// with one small message pair, amortized over every object in the
	// volume.
	time.Sleep(2500 * time.Millisecond)
	if _, err := alice.Read("site", "/style.css"); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Printf("server state: %d object leases, %d volume leases (%d bytes)\n",
		st.ObjectLeases, st.VolumeLeases, st.StateBytes)
	_, _, invals := bob.Stats()
	fmt.Printf("bob received %d invalidation(s)\n", invals)
	return nil
}
