// Webcache: a fleet of edge caches in front of one origin over real TCP,
// exercising the workload the paper's introduction motivates — browsers
// reading pages (bursts of objects from one volume) that occasionally
// change. It prints the message economics: how volume leases turn per-read
// validation into one short renewal per page view.
//
//	go run ./examples/webcache
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/transport"
)

const (
	edges     = 5  // edge caches
	pages     = 4  // pages on the site
	perPage   = 5  // objects per page (html + embedded)
	pageViews = 40 // page views per edge
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rec := metrics.NewRecorder()
	srv, err := server.New(server.Config{
		Name: "origin",
		Addr: "127.0.0.1:0",
		Net:  transport.TCP{},
		Table: core.Config{
			ObjectLease: 5 * time.Minute,  // long object leases
			VolumeLease: 3 * time.Second,  // short volume leases
			Mode:        core.ModeDelayed, // queue invalidations for idle edges
		},
		Recorder: rec,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	if err := srv.AddVolume("site"); err != nil {
		return err
	}
	var objects []core.ObjectID
	for p := 0; p < pages; p++ {
		for o := 0; o < perPage; o++ {
			id := core.ObjectID(fmt.Sprintf("/page%d/obj%d", p, o))
			objects = append(objects, id)
			if err := srv.AddObject("site", id, []byte(fmt.Sprintf("content of %s v1", id))); err != nil {
				return err
			}
		}
	}
	fmt.Printf("origin serving %d objects on %s\n", len(objects), srv.Addr())

	// A writer occasionally updates objects, like a CMS.
	stopWriter := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; ; i++ {
			select {
			case <-stopWriter:
				return
			case <-time.After(150 * time.Millisecond):
			}
			oid := objects[rng.Intn(len(objects))]
			if _, _, err := srv.Write(oid, []byte(fmt.Sprintf("content of %s v%d", oid, i+2))); err != nil {
				log.Printf("writer: %v", err)
			}
		}
	}()

	// Edge caches browse: pick a page, read all its objects (one volume
	// lease covers the burst), think, repeat. Connections stay open until
	// the writer stops: a departed edge's leases would otherwise delay
	// writes until its volume lease ran out (which is correct, but not the
	// point of this example — see examples/newsfeed for that).
	clients := make([]*client.Client, edges)
	for e := range clients {
		cl, err := client.Dial(transport.TCP{}, srv.Addr(), client.Config{
			ID: core.ClientID(fmt.Sprintf("edge-%d", e)),
		})
		if err != nil {
			return err
		}
		defer cl.Close()
		clients[e] = cl
	}
	var wg sync.WaitGroup
	for e := 0; e < edges; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			cl := clients[e]
			rng := rand.New(rand.NewSource(int64(e)))
			for v := 0; v < pageViews; v++ {
				p := rng.Intn(pages)
				for o := 0; o < perPage; o++ {
					oid := core.ObjectID(fmt.Sprintf("/page%d/obj%d", p, o))
					if _, err := cl.Read("site", oid); err != nil {
						log.Printf("edge-%d read %s: %v", e, oid, err)
					}
				}
				time.Sleep(time.Duration(rng.Intn(40)) * time.Millisecond)
			}
			local, remote, invals := cl.Stats()
			fmt.Printf("edge-%d: %3d reads served locally, %3d server round trips, %2d invalidations\n",
				e, local, remote, invals)
		}(e)
	}
	wg.Wait()
	close(stopWriter)
	writerWG.Wait()

	tot := rec.Totals()
	writes, meanDelay, maxDelay := rec.WriteStats()
	st := srv.Stats()
	fmt.Printf("\norigin: %d protocol messages for %d reads across %d edges\n",
		tot.Messages, edges*pageViews*perPage, edges)
	fmt.Printf("origin: %d writes, mean ack wait %v, max %v\n", writes, meanDelay, maxDelay)
	fmt.Printf("origin state: %d object leases, %d volume leases, %d pending invalidations (%d bytes)\n",
		st.ObjectLeases, st.VolumeLeases, st.PendingInvalidation, st.StateBytes)
	return nil
}
