// Hierarchy: a two-level volume-lease caching tree — the deployment the
// paper's introduction motivates ("aggressive caching or replication
// hierarchies"). An origin serves a regional proxy, which serves two leaf
// caches. The demo shows:
//
//   - reads absorbed level by level (the origin sees one fetch however many
//     leaves read),
//
//   - a write at the origin completing only after the WHOLE subtree has
//     dropped the object (the proxy acknowledges upstream only after its
//     own clients acknowledged), and
//
//   - the failure bound composing: cutting a leaf off delays the origin's
//     write by the leaf's short volume sub-lease, not its long object
//     sub-lease.
//
//     go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/proxy"
	"repro/internal/server"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := transport.NewMemory()
	rec := metrics.NewRecorder()

	origin, err := server.New(server.Config{
		Name: "origin",
		Addr: "origin:1",
		Net:  net,
		Table: core.Config{
			ObjectLease: time.Hour,       // long object leases at the top
			VolumeLease: 2 * time.Second, // short volume leases bound failures
			Mode:        core.ModeEager,
		},
		MsgTimeout: 50 * time.Millisecond,
		Recorder:   rec,
	})
	if err != nil {
		return err
	}
	defer origin.Close()
	if err := origin.AddVolume("site"); err != nil {
		return err
	}
	if err := origin.AddObject("site", "/front-page", []byte("front page v1")); err != nil {
		return err
	}

	px, err := proxy.New(proxy.Config{
		ID:             "regional-cache",
		Addr:           "proxy:1",
		Net:            net,
		Upstream:       "origin:1",
		Volume:         "site",
		SubObjectLease: 30 * time.Minute,
		SubVolumeLease: time.Second,
		MsgTimeout:     50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer px.Close()

	leaves := make([]*client.Client, 2)
	for i := range leaves {
		leaves[i], err = client.Dial(net, "proxy:1", client.Config{
			ID: core.ClientID(fmt.Sprintf("leaf-%d", i)),
		})
		if err != nil {
			return err
		}
		defer leaves[i].Close()
	}

	// Both leaves read; the origin transfers the object exactly once.
	for i, leaf := range leaves {
		data, err := leaf.Read("site", "/front-page")
		if err != nil {
			return err
		}
		fmt.Printf("leaf-%d reads: %s\n", i, data)
	}
	fmt.Printf("origin data transfers so far: %d (proxy absorbed the second fetch)\n\n",
		rec.Totals().ByClass[metrics.MsgData])

	// A write at the origin: it completes only after the proxy has
	// invalidated both leaves and relayed their acknowledgments.
	version, waited, err := origin.Write("/front-page", []byte("front page v2"))
	if err != nil {
		return err
	}
	fmt.Printf("origin wrote v%d; waited %v for the subtree to drop v1\n", version, waited)
	for i, leaf := range leaves {
		data, err := leaf.Read("site", "/front-page")
		if err != nil {
			return err
		}
		_, _, invals := leaf.Stats()
		fmt.Printf("leaf-%d now reads: %s (after %d invalidation)\n", i, data, invals)
	}

	// Cut off leaf-1. The origin's next write is delayed only by leaf-1's
	// short volume sub-lease (~1s), not its 30-minute object sub-lease.
	fmt.Println("\npartitioning leaf-1 from the proxy...")
	net.Partition("leaf-1", "proxy")
	start := time.Now()
	if _, _, err := origin.Write("/front-page", []byte("front page v3")); err != nil {
		return err
	}
	fmt.Printf("origin wrote v3 in %v despite the dead leaf (bounded by the volume sub-lease)\n",
		time.Since(start).Round(10*time.Millisecond))

	if data, err := leaves[0].Read("site", "/front-page"); err == nil {
		fmt.Printf("leaf-0 reads: %s\n", data)
	}
	time.Sleep(1100 * time.Millisecond)
	if _, err := leaves[1].Read("site", "/front-page"); err != nil {
		fmt.Println("leaf-1 (partitioned): consistent read refused, never stale")
	}
	net.Heal("leaf-1", "proxy")
	if data, err := leaves[1].Read("site", "/front-page"); err == nil {
		fmt.Printf("leaf-1 after heal: %s (resynchronized via the proxy)\n", data)
	}
	st := px.Stats()
	fmt.Printf("\nproxy state: %d object sub-leases, %d volume sub-leases, %d unreachable\n",
		st.ObjectLeases, st.VolumeLeases, st.UnreachableClients)
	return nil
}
