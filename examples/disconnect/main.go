// Disconnect: the fault-tolerance machinery of Section 3.1 end to end —
// a client misses invalidations during a partition, is moved to the
// server's Unreachable set, and is resynchronized by the reconnection
// protocol (MUST_RENEW_ALL / RENEW_OBJ_LEASES / combined invalidate+renew
// vector) on its next volume renewal; then a server crash-reboot shows the
// epoch mechanism and the post-recovery write fence.
//
//	go run ./examples/disconnect
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := transport.NewMemory()
	srv, err := server.New(server.Config{
		Name: "srv",
		Addr: "srv:1",
		Net:  net,
		Table: core.Config{
			ObjectLease: time.Hour,
			VolumeLease: 500 * time.Millisecond,
			Mode:        core.ModeEager,
		},
		MsgTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	if err := srv.AddVolume("vol"); err != nil {
		return err
	}
	for _, o := range []string{"a", "b", "c"} {
		if err := srv.AddObject("vol", core.ObjectID(o), []byte(o+" v1")); err != nil {
			return err
		}
	}

	cl, err := client.Dial(net, "srv:1", client.Config{ID: "laptop"})
	if err != nil {
		return err
	}
	defer cl.Close()
	for _, o := range []string{"a", "b", "c"} {
		if _, err := cl.Read("vol", core.ObjectID(o)); err != nil {
			return err
		}
	}
	fmt.Println("laptop cached a, b, c")

	// --- Partition: the laptop misses a write to "a". ---
	net.Partition("laptop", "srv")
	if _, waited, err := srv.Write("a", []byte("a v2")); err != nil {
		return err
	} else {
		fmt.Printf("server wrote a v2 during partition (waited %v, then marked laptop unreachable)\n",
			waited.Round(time.Millisecond))
	}
	st := srv.Stats()
	fmt.Printf("server: %d client(s) in the Unreachable set\n", st.UnreachableClients)

	// --- Heal: the next read triggers the reconnection protocol. ---
	net.Heal("laptop", "srv")
	a, err := cl.Read("vol", "a")
	if err != nil {
		return err
	}
	b, err := cl.Read("vol", "b")
	if err != nil {
		return err
	}
	local, remote, invals := cl.Stats()
	fmt.Printf("after reconnect: a=%q (refetched), b=%q (renewed, not refetched)\n", a, b)
	fmt.Printf("laptop stats: %d local reads, %d round trips, %d invalidations\n", local, remote, invals)
	st = srv.Stats()
	fmt.Printf("server: %d client(s) unreachable after resync\n\n", st.UnreachableClients)

	// --- Server crash-reboot: epochs and the write fence. ---
	fmt.Println("server crashes and reboots (all lease state lost)...")
	srv.Recover()
	if _, _, err := srv.Write("b", []byte("b v2")); errors.Is(err, core.ErrWriteFenced) {
		fmt.Println("write fenced: the server waits out every pre-crash volume lease first")
	}
	time.Sleep(600 * time.Millisecond) // the fence is one volume-lease long
	if _, _, err := srv.Write("b", []byte("b v2")); err != nil {
		return err
	}
	epoch, _ := srv.Epoch("vol")
	fmt.Printf("fence drained; b written; volume epoch is now %d\n", epoch)

	// The old connection died with the crash; the laptop reconnects. Its
	// first volume renewal carries the old epoch, so the server forces the
	// full renewal protocol, which invalidates the stale b.
	cl2, err := client.Dial(net, "srv:1", client.Config{ID: "laptop"})
	if err != nil {
		return err
	}
	defer cl2.Close()
	b2, err := cl2.Read("vol", "b")
	if err != nil {
		return err
	}
	fmt.Printf("reconnected laptop reads b=%q under epoch %d\n", b2, epoch)
	return nil
}
