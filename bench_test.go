// Package repro's top-level benchmarks regenerate every table and figure of
// the paper's evaluation (run with `go test -bench=. -benchmem`):
//
//	BenchmarkTable1  — the six algorithms' message costs on the default workload
//	BenchmarkFig5    — messages vs object timeout for all families
//	BenchmarkFig6/7  — server consistency state at the 1st/10th most popular server
//	BenchmarkFig8/9  — burst-load histograms under default/bursty writes
//
// The reported custom metrics (msgs, bytes, stale-rate, state-bytes,
// peak-load) are the paper's y-axes; see EXPERIMENTS.md for the
// paper-vs-measured comparison.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/proxy"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// BenchmarkTable1 exercises each Table 1 algorithm on the default workload
// and reports the headline metrics per algorithm.
func BenchmarkTable1(b *testing.B) {
	w := bench.DefaultWorkload(bench.ScaleSmall)
	specs := []bench.Spec{
		bench.PollEachRead(),
		bench.Poll(100000),
		bench.Callback(),
		bench.Lease(100000),
		bench.Volume(10, 100000),
		bench.Delay(10, 100000),
	}
	for _, spec := range specs {
		b.Run(spec.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rec, _ := bench.Run(w, spec)
				tot := rec.Totals()
				b.ReportMetric(float64(tot.Messages), "msgs")
				b.ReportMetric(float64(tot.Bytes), "bytes")
				b.ReportMetric(rec.StaleRate(), "stale-rate")
			}
		})
	}
}

// BenchmarkFig5 regenerates Figure 5: total messages vs object timeout.
func BenchmarkFig5(b *testing.B) {
	w := bench.DefaultWorkload(bench.ScaleSmall)
	for i := 0; i < b.N; i++ {
		series, stale := bench.Fig5(w, bench.DefaultTimeouts)
		if len(series) == 0 || len(stale.Y) == 0 {
			b.Fatal("empty figure")
		}
	}
	b.ReportMetric(float64(len(bench.DefaultTimeouts)*len(bench.Fig5Families())), "sims/op")
}

// BenchmarkFig5Callouts reproduces the paper's headline percentages: the
// best volume/delay configurations against Lease at fixed write-delay
// bounds of 10s and 100s.
func BenchmarkFig5Callouts(b *testing.B) {
	w := bench.DefaultWorkload(bench.ScaleSmall)
	for i := 0; i < b.N; i++ {
		for _, bound := range []float64{10, 100} {
			cs := bench.Callouts(w, bound, bench.DefaultTimeouts)
			for _, c := range cs {
				b.ReportMetric(c.Saving*100, fmt.Sprintf("saving-%%@%gs-%s", bound, shortName(c.Name)))
			}
		}
	}
}

func shortName(s string) string {
	if len(s) > 6 && s[:6] == "Volume" {
		return "volume"
	}
	return "delay"
}

// BenchmarkFig6 regenerates Figure 6: average consistency state at the most
// popular server vs timeout.
func BenchmarkFig6(b *testing.B) {
	benchFigState(b, 0)
}

// BenchmarkFig7 regenerates Figure 7: state at the 10th most popular server.
func BenchmarkFig7(b *testing.B) {
	benchFigState(b, 9)
}

func benchFigState(b *testing.B, rank int) {
	w := bench.DefaultWorkload(bench.ScaleSmall)
	for i := 0; i < b.N; i++ {
		series := bench.FigState(w, bench.DefaultTimeouts, rank)
		if len(series) == 0 {
			b.Fatal("empty figure")
		}
		for _, s := range series {
			b.ReportMetric(s.Y[len(s.Y)-1], "state-bytes-"+s.Label)
		}
	}
}

// BenchmarkFig8 regenerates Figure 8: burst-load histogram under the
// default write workload.
func BenchmarkFig8(b *testing.B) {
	benchFigLoad(b, bench.DefaultWorkload(bench.ScaleSmall))
}

// BenchmarkFig9 regenerates Figure 9: burst-load histogram under the bursty
// write workload.
func BenchmarkFig9(b *testing.B) {
	benchFigLoad(b, bench.BurstyWorkload(bench.ScaleSmall))
}

func benchFigLoad(b *testing.B, w bench.Workload) {
	for i := 0; i < b.N; i++ {
		for _, spec := range bench.Fig8Specs() {
			b.ReportMetric(float64(bench.PeakLoad(w, spec)), "peak-load-"+spec.Name())
		}
	}
}

// BenchmarkSimulatorThroughput measures raw event-processing speed of the
// simulation engine with the cheapest algorithm.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w := bench.DefaultWorkload(bench.ScaleSmall)
	b.ResetTimer()
	var events int
	for i := 0; i < b.N; i++ {
		_, res, err := sim.Simulate(w.Trace, func(env *sim.Env) sim.Algorithm {
			return bench.Callback().New(env)
		})
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkWireRoundTrip measures codec throughput for a typical grant
// carrying an 8 KiB payload.
func BenchmarkWireRoundTrip(b *testing.B) {
	m := wire.ObjLease{
		Seq: 42, Object: "volume/object/17", Version: 9,
		Expire: time.Now().Add(time.Minute), HasData: true,
		Data: make([]byte, 8192),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := wire.Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerCachedRead measures end-to-end read latency of the
// networked stack over the in-memory transport when the cache is warm (the
// common case: both leases valid, zero server messages).
func BenchmarkServerCachedRead(b *testing.B) {
	net := transport.NewMemory()
	srv, err := server.New(server.Config{
		Name: "srv", Addr: "srv:1", Net: net,
		Table: core.Config{ObjectLease: time.Hour, VolumeLease: time.Hour, Mode: core.ModeEager},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	if err := srv.AddVolume("v"); err != nil {
		b.Fatal(err)
	}
	if err := srv.AddObject("v", "o", make([]byte, 4096)); err != nil {
		b.Fatal(err)
	}
	cl, err := client.Dial(net, "srv:1", client.Config{ID: "c"})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Read("v", "o"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Read("v", "o"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerCachedReadObserved is BenchmarkServerCachedRead with the
// full observability stack attached — metrics registry, event tracing into
// a counting sink, and per-kind wire counters — so the delta against the
// bare benchmark is the live cost of instrumentation (the bare run pays
// only nil checks; see internal/obs BenchmarkEmitDisabled).
func BenchmarkServerCachedReadObserved(b *testing.B) {
	reg := obs.NewRegistry()
	observer := &obs.Observer{Metrics: reg, Tracer: obs.NewTracer(obs.NewCountSink())}
	net := transport.ObserveNetwork(transport.NewMemory(),
		obs.WireObserver(observer, "srv", time.Now))
	srv, err := server.New(server.Config{
		Name: "srv", Addr: "srv:1", Net: net, Obs: observer,
		Table: core.Config{ObjectLease: time.Hour, VolumeLease: time.Hour, Mode: core.ModeEager},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	if err := srv.AddVolume("v"); err != nil {
		b.Fatal(err)
	}
	if err := srv.AddObject("v", "o", make([]byte, 4096)); err != nil {
		b.Fatal(err)
	}
	cl, err := client.Dial(net, "srv:1", client.Config{ID: "c", Obs: observer})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Read("v", "o"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Read("v", "o"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObjectLeaseRenewalRPC measures the object-lease renewal round
// trip at the protocol level (the Lease algorithm's 1/(R*t) cost made
// concrete): a raw ReqObjLease/ObjLease exchange with the client's version
// current, so no payload moves.
func BenchmarkObjectLeaseRenewalRPC(b *testing.B) {
	net := transport.NewMemory()
	srv, err := server.New(server.Config{
		Name: "srv", Addr: "srv:1", Net: net,
		Table: core.Config{ObjectLease: time.Hour, VolumeLease: time.Hour, Mode: core.ModeEager},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	if err := srv.AddVolume("v"); err != nil {
		b.Fatal(err)
	}
	if err := srv.AddObject("v", "o", make([]byte, 512)); err != nil {
		b.Fatal(err)
	}
	conn, err := net.DialFrom("bench", "srv:1")
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(wire.Hello{Client: "bench"}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Send(wire.ReqObjLease{Seq: uint64(i + 1), Object: "o", Version: 1}); err != nil {
			b.Fatal(err)
		}
		m, err := conn.Recv()
		if err != nil {
			b.Fatal(err)
		}
		if lease, ok := m.(wire.ObjLease); !ok || lease.HasData {
			b.Fatalf("unexpected reply %#v", m)
		}
	}
}

// BenchmarkWriteInvalidation measures the full write path: invalidate one
// connected lease holder, collect its ack, install the data.
func BenchmarkWriteInvalidation(b *testing.B) {
	net := transport.NewMemory()
	srv, err := server.New(server.Config{
		Name: "srv", Addr: "srv:1", Net: net,
		Table: core.Config{ObjectLease: time.Hour, VolumeLease: time.Hour, Mode: core.ModeEager},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	if err := srv.AddVolume("v"); err != nil {
		b.Fatal(err)
	}
	if err := srv.AddObject("v", "o", []byte("x")); err != nil {
		b.Fatal(err)
	}
	cl, err := client.Dial(net, "srv:1", client.Config{ID: "c"})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	payload := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-arm the lease, then write (which revokes it).
		if _, err := cl.Read("v", "o"); err != nil {
			b.Fatal(err)
		}
		if _, _, err := srv.Write("o", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGeneration measures synthetic trace generation speed.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := bench.DefaultWorkload(bench.ScaleSmall)
		if len(w.Trace) == 0 {
			b.Fatal("empty workload")
		}
	}
}

// BenchmarkTraceSort measures trace merge/sort speed on the full workload.
func BenchmarkTraceSort(b *testing.B) {
	w := bench.DefaultWorkload(bench.ScaleSmall)
	orig := make(trace.Trace, len(w.Trace))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(orig, w.Trace)
		orig.Sort()
	}
}

// BenchmarkAblationDSweep quantifies the Delay discard-time trade-off the
// paper left unmeasured: messages and reconnections vs d.
func BenchmarkAblationDSweep(b *testing.B) {
	w := bench.DefaultWorkload(bench.ScaleSmall)
	for i := 0; i < b.N; i++ {
		points := bench.DSweep(w, 10, 1e6, []float64{60, 3600, 1e18})
		for _, p := range points {
			name := fmt.Sprintf("msgs@d=%g", p.D)
			if p.D > 1e17 {
				name = "msgs@d=inf"
			}
			b.ReportMetric(float64(p.Messages), name)
		}
	}
}

// BenchmarkAblationTVSweep measures the volume-lease-length trade-off.
func BenchmarkAblationTVSweep(b *testing.B) {
	w := bench.DefaultWorkload(bench.ScaleSmall)
	for i := 0; i < b.N; i++ {
		for _, p := range bench.TVSweep(w, 1e6, []float64{10, 100, 1000}) {
			b.ReportMetric(float64(p.Messages), fmt.Sprintf("msgs@tv=%g", p.TV))
		}
	}
}

// BenchmarkAblationLocality measures volume-lease savings vs read-burst
// size.
func BenchmarkAblationLocality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range bench.LocalitySweep([]float64{0, 3, 7}) {
			b.ReportMetric(p.Saving*100, fmt.Sprintf("saving%%@%.0fobj", p.ObjectsPerView))
		}
	}
}

// BenchmarkProxyCachedRead measures a warm read against a hierarchical
// proxy (both sub-leases valid; zero messages anywhere).
func BenchmarkProxyCachedRead(b *testing.B) {
	net := transport.NewMemory()
	origin, err := server.New(server.Config{
		Name: "origin", Addr: "origin:1", Net: net,
		Table: core.Config{ObjectLease: time.Hour, VolumeLease: time.Hour, Mode: core.ModeEager},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer origin.Close()
	if err := origin.AddVolume("v"); err != nil {
		b.Fatal(err)
	}
	if err := origin.AddObject("v", "o", make([]byte, 4096)); err != nil {
		b.Fatal(err)
	}
	px, err := proxy.New(proxy.Config{
		ID: "px", Addr: "px:1", Net: net, Upstream: "origin:1", Volume: "v",
		SubObjectLease: time.Hour, SubVolumeLease: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer px.Close()
	cl, err := client.Dial(net, "px:1", client.Config{ID: "leaf"})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Read("v", "o"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Read("v", "o"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProxyWriteFanout measures an origin write that must invalidate
// one leaf through a proxy (two-level ack chain).
func BenchmarkProxyWriteFanout(b *testing.B) {
	net := transport.NewMemory()
	origin, err := server.New(server.Config{
		Name: "origin", Addr: "origin:1", Net: net,
		Table: core.Config{ObjectLease: time.Hour, VolumeLease: time.Hour, Mode: core.ModeEager},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer origin.Close()
	if err := origin.AddVolume("v"); err != nil {
		b.Fatal(err)
	}
	if err := origin.AddObject("v", "o", []byte("x")); err != nil {
		b.Fatal(err)
	}
	px, err := proxy.New(proxy.Config{
		ID: "px", Addr: "px:1", Net: net, Upstream: "origin:1", Volume: "v",
		SubObjectLease: time.Hour, SubVolumeLease: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer px.Close()
	cl, err := client.Dial(net, "px:1", client.Config{ID: "leaf"})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	payload := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Read("v", "o"); err != nil {
			b.Fatal(err)
		}
		if _, _, err := origin.Write("o", payload); err != nil {
			b.Fatal(err)
		}
	}
}
