# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet lint staticcheck test race check cover bench bench-json bench-disabled bench-diff bench-wirepath flightdump statedump figures fuzz examples loadtest clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific analyzers: the five single-function checks (clock
# injection, shard lock order, wire encode/decode symmetry, metric hygiene,
# goroutine shutdown wiring) plus the four interprocedural ones built on the
# whole-module call graph (hotalloc, lockflow, spawnjoin, snapshotcopy).
# Stale //lint:allow comments are findings too. See DESIGN.md §8/§13;
# suppress a finding with `//lint:allow <analyzer> — reason`.
lint:
	$(GO) run ./cmd/leasevet ./...

# Pinned staticcheck. `go run pkg@version` needs the module cache or
# network to resolve the tool, so hermetic environments skip with a notice
# instead of failing the gate — but when the tool IS resolvable, its
# findings do fail the build.
STATICCHECK_VERSION ?= 2024.1.1
STATICCHECK := $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
staticcheck:
	@if $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(STATICCHECK) ./... ; \
	else \
		echo "staticcheck $(STATICCHECK_VERSION) unavailable (offline?); skipping"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full gate: compile, static checks, tests, and the race detector.
check: build vet lint staticcheck test race

cover:
	$(GO) test -cover ./internal/...

# Regenerates every table and figure of the paper (TSVs land in results/).
figures:
	$(GO) run ./cmd/figures -all -scale full -out results

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot: ns/op and allocs/op for every
# benchmark, as JSON (format documented in EXPERIMENTS.md). Includes
# BenchmarkConcurrentWrites, whose writes/s metric across 1/4/16 volumes is
# the sharded write path's scaling curve. Parameterized so CI can run a
# short preset: `make bench-json BENCH_PKGS=./internal/obs BENCH_FLAGS=...`.
BENCH_OUT   ?= BENCH_PR8.json
BENCH_PKGS  ?= ./...
BENCH_FLAGS ?= -bench=. -benchmem
bench-json:
	$(GO) test -run '^$$' $(BENCH_FLAGS) $(BENCH_PKGS) | $(GO) run ./cmd/benchjson > $(BENCH_OUT)

# Perf-regression gate: compare two bench-json snapshots with cmd/benchdiff
# (exit 2 on regression). Only benchmarks present in BOTH snapshots are
# compared, so an old baseline keeps gating the benchmarks it knows about.
# The root-package simulator benchmarks allocate millions of objects per op
# and their allocs/op average jitters by ~0.001% with the iteration count,
# so they get a hair of alloc slack; hot-path benchmarks stay exact (+0%).
# The transport send benchmarks measure delivered throughput across a real
# loopback socket pair, so their ns/op carries scheduler and kernel noise —
# they get wide ns slack and rely on the exact alloc gate (and the
# bench-wirepath zero-alloc check) instead.
BENCH_BASE ?= BENCH_PR7.json
BENCH_CAND ?= BENCH_PR8.json
bench-diff:
	$(GO) run ./cmd/benchdiff \
		-rule 'repro Benchmark=alloc:0.01' \
		-rule 'transport Benchmark=ns:75' \
		-rule 'core BenchmarkTableSnapshot=ns:50,alloc:0.01' \
		$(BENCH_BASE) $(BENCH_CAND)

# Gate: the batched wire path must stay allocation-free end to end — the
# pooled append-encoders (BenchmarkWirePath/append) and the full
# send-to-delivery loop for grant/renew/invalidate (BenchmarkBatchedSend)
# all report 0 B/op, 0 allocs/op. The same property is pinned statically:
# `make lint`'s hotalloc analyzer checks every function reachable from the
# //lint:hotpath roots, including paths the benchmark inputs don't drive
# (DESIGN.md §13.3).
bench-wirepath:
	@echo "bench-wirepath: dynamic half of the zero-alloc gate (static half: hotalloc in 'make lint')"
	$(GO) test -run '^$$' -bench 'BenchmarkWirePath/append|BenchmarkBatchedSend/' -benchmem -benchtime=0.2s ./internal/wire ./internal/transport | tee /dev/stderr | \
		awk '/Benchmark(WirePath\/append|BatchedSend)/ && ($$(NF-1) != 0 || $$(NF-3) != 0) { bad = 1 } END { exit bad }'

# Gate: the instrumented hot paths must stay allocation-free when tracing
# is disabled (BenchmarkEmitDisabled / BenchmarkSpanDisabled /
# BenchmarkFlightDisabled / BenchmarkCostDisabled / BenchmarkStateDisabled
# report 0 B/op).
bench-disabled:
	$(GO) test -run '^$$' -bench 'Benchmark(Emit|Span|Flight|Cost|State)Disabled' -benchmem ./internal/obs ./internal/health ./internal/cost ./internal/state | tee /dev/stderr | \
		awk '/Disabled/ && ($$(NF-1) != 0 || $$(NF-3) != 0) { bad = 1 } END { exit bad }'

# Smoke test for the flight recorder: run the chaos scenario (partition a
# client mid-write) and leave its dump in $(FLIGHTDUMP_DIR) for inspection,
# exactly as a failed CI run would. See DESIGN.md §9 for the dump format.
FLIGHTDUMP_DIR ?= flight-dumps
flightdump:
	FLIGHT_DUMP_DIR=$(abspath $(FLIGHTDUMP_DIR)) $(GO) test -count=1 -run TestChaosPartitionLeavesFlightDump -v ./internal/health
	@ls -l $(FLIGHTDUMP_DIR)/flight-*.json

# Smoke test for lease-state introspection: drive leasemon's -leases and
# -diff modes against a live server and two clients, including the
# injected holder-mismatch that must exit 2. See DESIGN.md §12.
statedump:
	$(GO) test -count=1 -run TestStateDumpSmoke -v ./cmd/leasemon

fuzz:
	$(GO) test ./internal/wire -run Fuzz -fuzz=FuzzDecode -fuzztime=30s

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/newsfeed
	$(GO) run ./examples/disconnect
	$(GO) run ./examples/multiserver
	$(GO) run ./examples/hierarchy
	$(GO) run ./examples/webcache

loadtest:
	$(GO) run ./cmd/leasebench -clients 32 -duration 5s

clean:
	rm -rf results test_output.txt bench_output.txt
