# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet lint staticcheck test race check cover bench figures fuzz examples clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific analyzers (clock injection, shard lock order, wire
# encode/decode symmetry, metric hygiene, goroutine shutdown wiring). See
# DESIGN.md "Static analysis"; suppress a finding with
# `//lint:allow <analyzer> — reason`.
lint:
	$(GO) run ./cmd/leasevet ./...

# Pinned staticcheck. `go run pkg@version` needs the module cache or
# network to resolve the tool, so hermetic environments skip with a notice
# instead of failing the gate — but when the tool IS resolvable, its
# findings do fail the build.
STATICCHECK_VERSION ?= 2024.1.1
STATICCHECK := $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
staticcheck:
	@if $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(STATICCHECK) ./... ; \
	else \
		echo "staticcheck $(STATICCHECK_VERSION) unavailable (offline?); skipping"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full gate: compile, static checks, tests, and the race detector.
check: build vet lint staticcheck test race

cover:
	$(GO) test -cover ./internal/...

# Regenerates every table and figure of the paper (TSVs land in results/).
figures:
	$(GO) run ./cmd/figures -all -scale full -out results

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot: ns/op and allocs/op for every
# benchmark, as JSON (format documented in EXPERIMENTS.md). Includes
# BenchmarkConcurrentWrites, whose writes/s metric across 1/4/16 volumes is
# the sharded write path's scaling curve. Parameterized so CI can run a
# short preset: `make bench-json BENCH_PKGS=./internal/obs BENCH_FLAGS=...`.
BENCH_OUT   ?= BENCH_PR4.json
BENCH_PKGS  ?= ./...
BENCH_FLAGS ?= -bench=. -benchmem
bench-json:
	$(GO) test -run '^$$' $(BENCH_FLAGS) $(BENCH_PKGS) | $(GO) run ./cmd/benchjson > $(BENCH_OUT)

# Gate: the instrumented hot paths must stay allocation-free when tracing
# is disabled (BenchmarkEmitDisabled / BenchmarkSpanDisabled report 0 B/op).
bench-disabled:
	$(GO) test -run '^$$' -bench 'Benchmark(Emit|Span)Disabled' -benchmem ./internal/obs | tee /dev/stderr | \
		awk '/Disabled/ && ($$(NF-1) != 0 || $$(NF-3) != 0) { bad = 1 } END { exit bad }'

fuzz:
	$(GO) test ./internal/wire -run Fuzz -fuzz=FuzzDecode -fuzztime=30s

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/newsfeed
	$(GO) run ./examples/disconnect
	$(GO) run ./examples/multiserver
	$(GO) run ./examples/hierarchy
	$(GO) run ./examples/webcache

loadtest:
	$(GO) run ./cmd/leasebench -clients 32 -duration 5s

clean:
	rm -rf results test_output.txt bench_output.txt
